//! Structurally diverse redundancy (§I: "backup gates, replicated parallel
//! gates, or **diverse gates**").
//!
//! Identical N-modular redundancy masks *independent* physical faults but
//! replicates *design* flaws into every copy — a flawed gate netlist fails
//! identically three times and the voter happily confirms the wrong answer.
//! Diverse redundancy instantiates functionally identical but structurally
//! different implementations, so an implementation-level flaw stays
//! confined to one copy and is voted out.
//!
//! This module provides alternative implementations of the library
//! circuits (NAND-only and NOR-only adders — classic technology-remapped
//! variants), a diverse-NMR constructor, and a design-flaw fault model
//! that injects the *same relative defect* into every structural copy of
//! the same implementation.

use crate::circuits::majority_n;
use crate::faults::{FaultKind, FaultMap};
use crate::netlist::{GateId, GateKind, Netlist};
use rsoc_sim::SimRng;

/// A `width`-bit ripple-carry adder synthesized exclusively from NAND
/// gates (same interface as [`crate::circuits::ripple_carry_adder`]).
///
/// # Panics
/// Panics if `width == 0`.
pub fn ripple_carry_adder_nand(width: usize) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    let mut n = Netlist::new(format!("rca{width}-nand"));
    let a: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let b: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let mut carry = n.input();

    // NAND-only building blocks.
    let nand = |n: &mut Netlist, x: GateId, y: GateId| n.gate(GateKind::Nand, &[x, y]);
    let xor = |n: &mut Netlist, x: GateId, y: GateId| {
        // XOR from 4 NANDs.
        let t = nand(n, x, y);
        let u = nand(n, x, t);
        let v = nand(n, y, t);
        nand(n, u, v)
    };

    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let axb = xor(&mut n, a[i], b[i]);
        let sum = xor(&mut n, axb, carry);
        // cout = NAND(NAND(a,b), NAND(axb, cin)) == (a&b) | (axb & cin).
        let ab_n = nand(&mut n, a[i], b[i]);
        let cx_n = nand(&mut n, axb, carry);
        carry = nand(&mut n, ab_n, cx_n);
        sums.push(sum);
    }
    for s in sums {
        n.expose(s);
    }
    n.expose(carry);
    n
}

/// A `width`-bit ripple-carry adder synthesized exclusively from NOR
/// gates plus inverters (a third structural family).
///
/// # Panics
/// Panics if `width == 0`.
pub fn ripple_carry_adder_nor(width: usize) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    let mut n = Netlist::new(format!("rca{width}-nor"));
    let a: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let b: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let mut carry = n.input();

    let nor = |n: &mut Netlist, x: GateId, y: GateId| n.gate(GateKind::Nor, &[x, y]);
    let inv = |n: &mut Netlist, x: GateId| n.not(x);
    let or = |n: &mut Netlist, x: GateId, y: GateId| {
        let t = nor(n, x, y);
        inv(n, t)
    };
    let and = |n: &mut Netlist, x: GateId, y: GateId| {
        let nx = inv(n, x);
        let ny = inv(n, y);
        nor(n, nx, ny)
    };
    let xor = |n: &mut Netlist, x: GateId, y: GateId| {
        // x ^ y = (x | y) & !(x & y)
        let o = or(n, x, y);
        let a2 = and(n, x, y);
        let na = inv(n, a2);
        and(n, o, na)
    };

    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let axb = xor(&mut n, a[i], b[i]);
        let sum = xor(&mut n, axb, carry);
        let ab = and(&mut n, a[i], b[i]);
        let cx = and(&mut n, carry, axb);
        carry = or(&mut n, ab, cx);
        sums.push(sum);
    }
    for s in sums {
        n.expose(s);
    }
    n.expose(carry);
    n
}

/// Builds an NMR circuit from *distinct implementations* of the same
/// function: `modules[i]` becomes copy `i`, all sharing primary inputs,
/// with a gate-built majority voter per output.
///
/// # Panics
/// Panics unless `modules` has odd length ≥ 1 and all modules share the
/// same input/output arity.
pub fn nmr_diverse(modules: &[&Netlist]) -> Netlist {
    assert!(!modules.is_empty() && modules.len() % 2 == 1, "need odd module count");
    let inputs_n = modules[0].input_count();
    let outputs_n = modules[0].output_count();
    for m in modules {
        assert_eq!(m.input_count(), inputs_n, "interface mismatch");
        assert_eq!(m.output_count(), outputs_n, "interface mismatch");
    }
    let mut out = Netlist::new(format!("diverse-{}x{}", modules[0].name(), modules.len()));
    let inputs: Vec<GateId> = (0..inputs_n).map(|_| out.input()).collect();
    let mut copies = Vec::with_capacity(modules.len());
    for m in modules {
        copies.push(out.instantiate(m, &inputs));
    }
    for bit in 0..outputs_n {
        let votes: Vec<GateId> = copies.iter().map(|c| c[bit]).collect();
        let voted = majority_n(&mut out, &votes);
        out.expose(voted);
    }
    out
}

/// A design flaw: one logic gate of an *implementation* is permanently
/// wrong (spec misread, synthesis bug, malicious edit). Identical copies
/// of that implementation all inherit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignFlaw {
    /// Index of the flawed logic gate within the implementation
    /// (counting logic gates only, in construction order).
    pub logic_gate_index: usize,
    /// How the flawed gate misbehaves.
    pub kind: FaultKind,
}

impl DesignFlaw {
    /// Samples a uniformly random flaw for an implementation with
    /// `logic_gates` logic gates.
    ///
    /// # Panics
    /// Panics if `logic_gates == 0`.
    pub fn sample(logic_gates: usize, rng: &mut SimRng) -> Self {
        assert!(logic_gates > 0, "no gates to flaw");
        let kinds = [FaultKind::StuckAt0, FaultKind::StuckAt1, FaultKind::Flip];
        DesignFlaw { logic_gate_index: rng.index(logic_gates), kind: kinds[rng.index(3)] }
    }
}

/// Materializes a design flaw of `module` into a fault map for an NMR
/// netlist built by [`crate::redundancy::nmr`] — the flaw lands at the
/// same relative position in **every** copy (common mode).
///
/// Relies on `nmr`'s construction order: shared inputs first, then the
/// copies' logic gates in module order, then voters.
pub fn flaw_in_identical_nmr(module: &Netlist, n: usize, flaw: DesignFlaw) -> FaultMap {
    let mut map = FaultMap::new();
    let module_logic = module.gate_count() - module.input_count();
    let base = module.input_count();
    for copy in 0..n {
        let idx = base + copy * module_logic + flaw.logic_gate_index;
        map.insert(GateId::new(idx as u32), flaw.kind);
    }
    map
}

/// Materializes a design flaw of implementation `which` into a fault map
/// for a [`nmr_diverse`] netlist — the flaw affects only that one copy.
pub fn flaw_in_diverse_nmr(modules: &[&Netlist], which: usize, flaw: DesignFlaw) -> FaultMap {
    assert!(which < modules.len(), "implementation index out of range");
    let mut map = FaultMap::new();
    let mut offset = modules[0].input_count();
    for m in modules.iter().take(which) {
        offset += m.gate_count() - m.input_count();
    }
    map.insert(GateId::new((offset + flaw.logic_gate_index) as u32), flaw.kind);
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::ripple_carry_adder;
    use crate::redundancy::nmr;

    fn random_inputs(width: usize, rng: &mut SimRng) -> Vec<bool> {
        (0..2 * width + 1).map(|_| rng.chance(0.5)).collect()
    }

    #[test]
    fn all_three_implementations_agree() {
        let w = 4;
        let base = ripple_carry_adder(w);
        let nand = ripple_carry_adder_nand(w);
        let nor = ripple_carry_adder_nor(w);
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let inputs = random_inputs(w, &mut rng);
            let expect = base.eval(&inputs);
            assert_eq!(nand.eval(&inputs), expect, "NAND variant diverges");
            assert_eq!(nor.eval(&inputs), expect, "NOR variant diverges");
        }
    }

    #[test]
    fn implementations_are_structurally_distinct() {
        let base = ripple_carry_adder(4);
        let nand = ripple_carry_adder_nand(4);
        let nor = ripple_carry_adder_nor(4);
        assert_ne!(base.logic_gate_count(), nand.logic_gate_count());
        assert_ne!(nand.logic_gate_count(), nor.logic_gate_count());
    }

    #[test]
    fn diverse_nmr_preserves_function() {
        let base = ripple_carry_adder(3);
        let nand = ripple_carry_adder_nand(3);
        let nor = ripple_carry_adder_nor(3);
        let diverse = nmr_diverse(&[&base, &nand, &nor]);
        let mut rng = SimRng::new(2);
        for _ in 0..100 {
            let inputs = random_inputs(3, &mut rng);
            assert_eq!(diverse.eval(&inputs), base.eval(&inputs));
        }
    }

    #[test]
    fn design_flaw_defeats_identical_tmr_but_not_diverse_tmr() {
        let w = 3;
        let base = ripple_carry_adder(w);
        let nand = ripple_carry_adder_nand(w);
        let nor = ripple_carry_adder_nor(w);
        let identical = nmr(&base, 3);
        let diverse = nmr_diverse(&[&base, &nand, &nor]);
        let mut rng = SimRng::new(3);

        let mut identical_failures = 0u32;
        let mut diverse_failures = 0u32;
        let trials = 200;
        for _ in 0..trials {
            let flaw = DesignFlaw::sample(base.logic_gate_count(), &mut rng);
            let id_map = flaw_in_identical_nmr(&base, 3, flaw);
            let dv_map = flaw_in_diverse_nmr(&[&base, &nand, &nor], 0, flaw);
            let inputs = random_inputs(w, &mut rng);
            let golden = base.eval(&inputs);
            if identical.eval_with_faults(&inputs, &id_map) != golden {
                identical_failures += 1;
            }
            if diverse.eval_with_faults(&inputs, &dv_map) != golden {
                diverse_failures += 1;
            }
        }
        assert_eq!(diverse_failures, 0, "a single-implementation flaw must be voted out");
        assert!(
            identical_failures > trials / 4,
            "replicated design flaws must frequently defeat identical TMR: {identical_failures}/{trials}"
        );
    }

    #[test]
    fn flaw_in_any_single_diverse_copy_is_masked() {
        let w = 2;
        let impls = [ripple_carry_adder(w), ripple_carry_adder_nand(w), ripple_carry_adder_nor(w)];
        let refs: Vec<&Netlist> = impls.iter().collect();
        let diverse = nmr_diverse(&refs);
        let mut rng = SimRng::new(4);
        for which in 0..3 {
            for _ in 0..50 {
                let flaw = DesignFlaw::sample(impls[which].logic_gate_count(), &mut rng);
                let map = flaw_in_diverse_nmr(&refs, which, flaw);
                let inputs = random_inputs(w, &mut rng);
                assert_eq!(
                    diverse.eval_with_faults(&inputs, &map),
                    impls[0].eval(&inputs),
                    "impl {which} flaw must be masked"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "interface mismatch")]
    fn diverse_nmr_rejects_mismatched_interfaces() {
        let a = ripple_carry_adder(2);
        let b = ripple_carry_adder(3);
        let c = ripple_carry_adder(2);
        nmr_diverse(&[&a, &b, &c]);
    }
}
