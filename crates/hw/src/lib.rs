//! # rsoc-hw — gate-level hardware substrate
//!
//! Models the bottom layers of the paper's Fig. 1: logic gates and simple
//! circuits, stochastic fault injection (stuck-at and transient), N-modular
//! redundancy with *fault-prone* majority voters, Hamming SEC-DED error
//! correction, and register cells with plain / parity / ECC protection.
//!
//! These models back experiments **E1** (gate-level redundancy) and **E2**
//! (hybrid register protection), and provide the gate-equivalent complexity
//! accounting that §III of the paper uses to argue for "exactly right
//! complexity" hybrids.
//!
//! ## Example: triple-modular redundancy masking a fault
//!
//! ```
//! use rsoc_hw::circuits::ripple_carry_adder;
//! use rsoc_hw::faults::{FaultKind, FaultMap};
//! use rsoc_hw::redundancy::nmr;
//! use rsoc_hw::netlist::GateId;
//!
//! let adder = ripple_carry_adder(4);
//! let tmr = nmr(&adder, 3);
//! // Break one internal gate of one replica copy.
//! let mut faults = FaultMap::new();
//! faults.insert(GateId::new(tmr.input_count() as u32 + 3), FaultKind::Flip);
//! let inputs = vec![true, false, true, false, false, true, false, true, false];
//! assert_eq!(
//!     tmr.eval_with_faults(&inputs, &faults),
//!     adder.eval(&inputs[..adder.input_count()]),
//! );
//! ```

pub mod circuits;
pub mod diverse;
pub mod ecc;
pub mod faults;
pub mod layers;
pub mod netlist;
pub mod redundancy;
pub mod register;
pub mod reliability;

pub use diverse::{nmr_diverse, DesignFlaw};
pub use ecc::{DecodeOutcome, Hamming};
pub use faults::{FaultKind, FaultMap, FaultSampler};
pub use netlist::{GateId, GateKind, Netlist};
pub use redundancy::nmr;
pub use register::{EccRegister, LoadOutcome, ParityRegister, PlainRegister, RegisterCell};
