//! Criterion micro-benchmarks for the substrate hot paths: crypto, hybrid
//! certificate handling, ECC codec, NoC routing, and single-op protocol
//! commits.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run, RunConfig};
use rsoc_crypto::{hmac_sha256, sha256, MacKey};
use rsoc_fpga::{Bitstream, FpgaFabric, Icap, Principal, ReconfigEngine, Region};
use rsoc_hw::ecc::Hamming;
use rsoc_hw::{EccRegister, PlainRegister, RegisterCell};
use rsoc_hybrid::{KeyRing, Usig, UsigId};
use rsoc_noc::network::{Network, NetworkConfig};
use rsoc_noc::{Mesh2d, Routing};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data_1k = vec![0xA5u8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("sha256/1KiB", |b| b.iter(|| sha256(black_box(&data_1k))));
    let key = MacKey::derive(1, "bench");
    g.bench_function("hmac_sha256/1KiB", |b| {
        b.iter(|| hmac_sha256(black_box(key.as_bytes()), black_box(&data_1k)))
    });
    // Cached key schedule vs the from-scratch reference. The win is the
    // two skipped pad-block compressions, so it is starkest on the short
    // certificate-sized messages the consensus hot path authenticates.
    g.bench_function("hmac_cached_key/1KiB", |b| b.iter(|| key.mac(black_box(&data_1k))));
    let cert = [0x5Au8; 44]; // UI payload size: id + counter + digest
    g.bench_function("hmac_sha256/44B", |b| {
        b.iter(|| hmac_sha256(black_box(key.as_bytes()), black_box(&cert)))
    });
    g.bench_function("hmac_cached_key/44B", |b| b.iter(|| key.mac(black_box(&cert))));
    g.finish();
}

fn bench_usig(c: &mut Criterion) {
    let mut g = c.benchmark_group("usig");
    let ring = KeyRing::provision(2, 2);
    let mut plain = Usig::new(UsigId(0), ring.clone(), Box::new(PlainRegister::new(64)));
    let mut ecc = Usig::new(UsigId(1), ring.clone(), Box::new(EccRegister::new(64)));
    g.bench_function("create_ui/plain", |b| {
        b.iter(|| plain.create_ui(black_box(b"prepare view=0 seq=1")).unwrap())
    });
    g.bench_function("create_ui/secded", |b| {
        b.iter(|| ecc.create_ui(black_box(b"prepare view=0 seq=1")).unwrap())
    });
    let verifier = Usig::new(UsigId(0), ring, Box::new(PlainRegister::new(64)));
    let mut signer =
        Usig::new(UsigId(1), KeyRing::provision(2, 2), Box::new(PlainRegister::new(64)));
    let ui = signer.create_ui(b"msg").unwrap();
    g.bench_function("verify_ui", |b| {
        b.iter(|| verifier.verify_ui(UsigId(1), black_box(&ui), black_box(b"msg")))
    });
    g.finish();
}

fn bench_ecc(c: &mut Criterion) {
    let mut g = c.benchmark_group("hamming64");
    let code = Hamming::new(64);
    g.bench_function("encode", |b| b.iter(|| code.encode(black_box(0xDEAD_BEEF_CAFE_F00D))));
    let cw = code.encode(0xDEAD_BEEF_CAFE_F00D);
    g.bench_function("decode_clean", |b| b.iter(|| code.decode(black_box(cw))));
    let corrupted = cw ^ (1 << 17);
    g.bench_function("decode_correct1", |b| b.iter(|| code.decode(black_box(corrupted))));
    let mut reg = EccRegister::new(64);
    reg.store(42);
    g.bench_function("register_load_scrub", |b| {
        b.iter(|| {
            reg.inject_flip(13);
            black_box(reg.load())
        })
    });
    g.finish();
}

fn bench_noc(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.bench_function("8x8_xy_100pkts_drain", |b| {
        b.iter(|| {
            let mesh = Mesh2d::new(8, 8);
            let mut net =
                Network::new(mesh, NetworkConfig { routing: Routing::Xy, ..Default::default() });
            for i in 0..100u16 {
                let s = rsoc_noc::NodeId(i % 64);
                let d = rsoc_noc::NodeId((i * 7 + 13) % 64);
                net.inject(s, d, 1);
            }
            net.drain(10_000);
            black_box(net.stats().delivered.len())
        })
    });
    g.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols");
    g.sample_size(20);
    let config = RunConfig::builder().f(1).clients(1).requests_per_client(10).seed(7).build();
    g.bench_function("pbft_f1_10ops", |b| {
        b.iter(|| {
            let mut cluster = PbftCluster::new(&config);
            black_box(run(&mut cluster, &config).committed)
        })
    });
    g.bench_function("minbft_f1_10ops", |b| {
        b.iter(|| {
            let mut cluster = MinBftCluster::new(&config);
            black_box(run(&mut cluster, &config).committed)
        })
    });
    g.finish();
}

/// Batched vs unbatched commit pipeline (wall-clock cost of simulating the
/// same 64-request workload; the *virtual-time* throughput comparison
/// lives in `f2_batching`).
fn bench_commit_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit");
    g.sample_size(20);
    let workload = |batch_size: usize| {
        RunConfig::builder()
            .f(1)
            .clients(8)
            .requests_per_client(8)
            .seed(7)
            .batch_size(batch_size)
            .batch_flush(100)
            .build()
    };
    for batch in [1usize, 8] {
        let config = workload(batch);
        g.bench_function(format!("batch{batch}"), move |b| {
            b.iter(|| {
                let mut cluster = MinBftCluster::new(&config);
                black_box(run(&mut cluster, &config).committed)
            })
        });
    }
    g.finish();
}

fn bench_fpga(c: &mut Criterion) {
    let mut g = c.benchmark_group("fpga");
    let key = MacKey::derive(3, "bs");
    g.bench_function("reconfigure_2frames", |b| {
        b.iter(|| {
            let mut icap = Icap::new(key.clone());
            icap.allow(Principal(0), Region::new(0, 16));
            let mut engine = ReconfigEngine::new(FpgaFabric::new(4, 4, 8), icap);
            let r = Region::new(0, 2);
            let bs = Bitstream::for_variant(1, r, 8, &key);
            black_box(engine.reconfigure(Principal(0), r, &bs, 1).unwrap().cycles)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_usig,
    bench_ecc,
    bench_noc,
    bench_protocols,
    bench_commit_batching,
    bench_fpga
);
criterion_main!(benches);
