//! F4 — Dense replica state + allocation-free message plane: wall-clock
//! cost of the PR 4 rework, proven *behavior-preserving* in virtual time.
//!
//! PR 4 replaced the `BTreeMap`-backed replica bookkeeping (`slots`,
//! `assigned`, `executed`, `pending`, `stored_*`, `ingress`, `vc_votes`)
//! with dense structures — a watermark-anchored ring window for sequence
//! keys, open-addressed hash indices for `OpId` keys, bitset quorum
//! tallies — made the message plane allocation-free end to end
//! (`Arc<Request>` wire fan-out, `Arc<Vec<u8>>` shared results, a reused
//! outbox), swapped the event heap for a cycle-indexed [`TimingWheel`],
//! and put the USIG statement buffers on the stack.
//!
//! None of that may change *what* the simulation computes. This binary
//! re-runs the F3 mesh cells and holds every cell to the **PR 3 build's
//! recorded virtual-time results exactly**: identical `duration_cycles`
//! (hence identical ops/kcycle), identical MAC-operation counts (hence
//! MACs/op), and identical final state digests. On top it records the
//! point of the exercise: wall ns/op at ≥ 1.3× the PR 3 build on every
//! cell (machine-dependent, so a loud warning by default and a hard
//! assert under `RSOC_STRICT_WALL=1`, like F3).
//!
//! Writes **`BENCH_4.json`** (self-validated by re-reading), gated in CI
//! by `check_regression` on `ops_per_kcycle` (higher-better) *and*
//! `macs_per_op` (lower-better, `--lower-metric`). In `--quick` mode the
//! wall fields are zeroed — the workload is too short for stable timing,
//! and zeroing them makes quick-mode JSON a pure function of the code, so
//! CI byte-compares a `--jobs 1` against a `--jobs N` run to prove the
//! parallel sweep runner deterministic.
//!
//! [`TimingWheel`]: rsoc_sim::TimingWheel

use rsoc_bench::{f1, f3, ExpOptions, Table};
use rsoc_bft::api::Cluster;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run, LatencyModel, RunConfig, RunReport};
use serde::Serialize;

/// Same client population as the F2/F3 baseline sweeps.
const CLIENTS: u32 = 16;
/// Same egress-serialization cost as F2/F3.
const LINK_OCCUPANCY: u64 = 8;
/// Same flush patience as F2/F3.
const BATCH_FLUSH: u64 = 100;
/// Fault threshold of every swept cell.
const F: u32 = 1;

/// Per-cell results of the **PR 3 build** (commit `aecd2ec`, the state
/// before the dense-state rework) on the reference dev machine, full-run
/// workload (`requests = 100`): `(protocol, batch, window,
/// duration_cycles, committed, mac_ops, state_digest, wall_ns_per_op)`.
///
/// The virtual-time fields are *exact* expectations — the rework must
/// reproduce them bit-for-bit; only the wall column is machine-dependent.
/// Regenerate by checking out PR 3 and running these cells (min-of-5).
type Pr3Cell = (&'static str, usize, usize, u64, u64, u64, &'static str, f64);

#[rustfmt::skip]
const PR3_MESH_CELLS: [Pr3Cell; 14] = [
    ("pbft", 1, 1, 89_619, 1600, 0, "93883eb17452a837c2f1916cbe4fad8059cf540aef9ce58efa9792e004c7506f", 15_225.3),
    ("pbft", 8, 1, 22_419, 1600, 0, "2caf1fecf06ebf8ea5ae7eef9116e51e7a6c24d3bd6f3c0edad76e8360699f38", 7_210.0),
    ("pbft", 8, 4, 22_419, 1600, 0, "2caf1fecf06ebf8ea5ae7eef9116e51e7a6c24d3bd6f3c0edad76e8360699f38", 7_328.3),
    ("pbft", 8, 8, 22_563, 1600, 0, "2caf1fecf06ebf8ea5ae7eef9116e51e7a6c24d3bd6f3c0edad76e8360699f38", 7_257.6),
    ("pbft", 16, 1, 23_376, 1600, 0, "f17ac1b918ff6248b3651182a8db53707f675860aced900bc26db494f19fbace", 6_998.7),
    ("pbft", 16, 4, 19_923, 1600, 0, "f17ac1b918ff6248b3651182a8db53707f675860aced900bc26db494f19fbace", 7_114.5),
    ("pbft", 16, 8, 20_163, 1600, 0, "f17ac1b918ff6248b3651182a8db53707f675860aced900bc26db494f19fbace", 7_127.1),
    ("minbft", 1, 1, 38_419, 1600, 20_800, "93883eb17452a837c2f1916cbe4fad8059cf540aef9ce58efa9792e004c7506f", 16_038.5),
    ("minbft", 8, 1, 16_547, 1600, 2_600, "2caf1fecf06ebf8ea5ae7eef9116e51e7a6c24d3bd6f3c0edad76e8360699f38", 6_596.6),
    ("minbft", 8, 4, 16_019, 1600, 2_600, "2caf1fecf06ebf8ea5ae7eef9116e51e7a6c24d3bd6f3c0edad76e8360699f38", 6_421.7),
    ("minbft", 8, 8, 16_067, 1600, 2_639, "2caf1fecf06ebf8ea5ae7eef9116e51e7a6c24d3bd6f3c0edad76e8360699f38", 6_450.8),
    ("minbft", 16, 1, 16_651, 1600, 2_080, "f17ac1b918ff6248b3651182a8db53707f675860aced900bc26db494f19fbace", 6_355.6),
    ("minbft", 16, 4, 15_123, 1600, 1_872, "f17ac1b918ff6248b3651182a8db53707f675860aced900bc26db494f19fbace", 6_098.8),
    ("minbft", 16, 8, 15_059, 1600, 1_820, "f17ac1b918ff6248b3651182a8db53707f675860aced900bc26db494f19fbace", 5_927.6),
];

/// Full-run request count the PR 3 expectations were recorded at.
const FULL_REQUESTS: u64 = 100;

#[derive(Serialize, Clone)]
struct Row {
    protocol: &'static str,
    batch_size: usize,
    client_window: usize,
    committed: u64,
    duration_cycles: u64,
    ops_per_kcycle: f64,
    macs_per_op: f64,
    /// 0.0 in quick mode (wall metrics are suppressed for determinism).
    wall_ns_per_op: f64,
    /// 0.0 in quick mode.
    wall_speedup_vs_pr3: f64,
    state_digest: String,
    safety_ok: bool,
}

#[derive(Serialize)]
struct Bench4 {
    experiment: &'static str,
    schema_version: u32,
    quick: bool,
    clients: u32,
    requests_per_client: u64,
    link_occupancy: u64,
    batch_flush: u64,
    pr3_baseline_commit: &'static str,
    rows: Vec<Row>,
}

/// The E3 placement (identical to F2/F3's mesh cells).
fn mesh_latency(n: u32) -> LatencyModel {
    LatencyModel::MeshHops {
        replica_at: (0..n).map(|i| ((i % 4) as u16, (i / 4) as u16)).collect(),
        client_at: (0, 0),
        per_hop: 1,
        overhead: 3,
    }
}

fn config(requests: u64, batch: usize, window: usize, n: u32, seed: u64) -> RunConfig {
    RunConfig::builder()
        .f(F)
        .clients(CLIENTS)
        .requests_per_client(requests)
        .seed(seed)
        .latency(mesh_latency(n))
        .max_cycles(50_000_000)
        .batch_size(batch)
        .batch_flush(BATCH_FLUSH)
        .link_occupancy(LINK_OCCUPANCY)
        .client_window(window)
        .client_timeout(4_000 * window.max(1) as u64)
        .request_patience(1_500 * window.max(1) as u64)
        .build()
}

fn hex(d: &[u8; 32]) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

/// Runs one cell: `(report, total MAC ops, node-0 state digest)`.
fn run_cell(protocol: &str, cfg: &RunConfig) -> (RunReport, u64, String) {
    match protocol {
        "pbft" => {
            let mut c = PbftCluster::new(cfg);
            let r = run(&mut c, cfg);
            let d = hex(&c.nodes()[0].state_digest());
            (r, 0, d)
        }
        _ => {
            let mut c = MinBftCluster::new(cfg);
            let r = run(&mut c, cfg);
            let macs = c
                .nodes()
                .iter()
                .map(|n| {
                    let (created, verified) = n.mac_ops();
                    created + verified
                })
                .sum();
            let d = hex(&c.nodes()[0].state_digest());
            (r, macs, d)
        }
    }
}

fn main() {
    let options = ExpOptions::from_args();
    let requests = options.trials(FULL_REQUESTS);
    let strict_wall = std::env::var("RSOC_STRICT_WALL").map(|v| v == "1").unwrap_or(false);
    // The PR 3 expectations were recorded at the full workload; a quick
    // run sweeps a smaller one, so only the full run pins the identities.
    let full_workload = requests == FULL_REQUESTS;

    let mut table = Table::new(
        "F4 dense replica state: virtual-time identity + wall ns/op vs the PR 3 build",
        &["protocol", "batch", "window", "ops/kcycle", "MACs/op", "wall ns/op", "vs PR3"],
    );

    let cells: Vec<&Pr3Cell> = PR3_MESH_CELLS.iter().collect();
    let results = rsoc_bench::run_cells(&cells, options.jobs, |cell| {
        let &&(protocol, batch, window, ..) = cell;
        let n = if protocol == "pbft" { 3 * F + 1 } else { 2 * F + 1 };
        let seed = 0xF2 + batch as u64; // F2/F3's seed formula: same workload
        let cfg = config(requests, batch, window, n, seed);
        let reps = if options.quick { 1 } else { 5 };
        let mut best_ns = u128::MAX;
        let mut out = None;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let r = run_cell(protocol, &cfg);
            best_ns = best_ns.min(t0.elapsed().as_nanos());
            out = Some(r);
        }
        let (report, macs, digest) = out.expect("at least one rep");
        (report, macs, digest, best_ns)
    });

    let mut rows: Vec<Row> = Vec::new();
    let mut worst_speedup = f64::MAX;
    for (cell, (report, macs, digest, best_ns)) in cells.iter().zip(&results) {
        let &&(protocol, batch, window, pr3_cycles, pr3_committed, pr3_macs, pr3_digest, pr3_wall) =
            cell;
        assert!(report.safety_ok, "{protocol} batch={batch} window={window} unsafe");
        if full_workload {
            // The tentpole's contract: dense state + allocation-free
            // message plane + timing wheel are *pure host-side*
            // optimizations. Virtual time must be bit-identical to PR 3.
            assert_eq!(
                report.duration_cycles, pr3_cycles,
                "{protocol} batch={batch} window={window}: virtual duration diverged from PR 3"
            );
            assert_eq!(
                report.committed, pr3_committed,
                "{protocol} batch={batch} window={window}: committed count diverged from PR 3"
            );
            assert_eq!(
                *macs, pr3_macs,
                "{protocol} batch={batch} window={window}: MAC-op count diverged from PR 3"
            );
            assert_eq!(
                digest, pr3_digest,
                "{protocol} batch={batch} window={window}: state digest diverged from PR 3"
            );
        }
        let (wall, speedup) = if options.quick {
            (0.0, 0.0) // suppressed: see module docs (jobs-determinism check)
        } else {
            let wall = *best_ns as f64 / report.committed.max(1) as f64;
            (wall, pr3_wall / wall)
        };
        if !options.quick {
            worst_speedup = worst_speedup.min(speedup);
        }
        let row = Row {
            protocol: if protocol == "pbft" { "pbft" } else { "minbft" },
            batch_size: batch,
            client_window: window,
            committed: report.committed,
            duration_cycles: report.duration_cycles,
            ops_per_kcycle: report.throughput_per_kcycle(),
            macs_per_op: *macs as f64 / report.committed.max(1) as f64,
            wall_ns_per_op: wall,
            wall_speedup_vs_pr3: speedup,
            state_digest: digest.clone(),
            safety_ok: report.safety_ok,
        };
        table.row(
            &[
                protocol.to_string(),
                batch.to_string(),
                window.to_string(),
                f3(row.ops_per_kcycle),
                f1(row.macs_per_op),
                f1(row.wall_ns_per_op),
                format!("{:.2}x", row.wall_speedup_vs_pr3),
            ],
            &row,
        );
        rows.push(row);
    }
    table.print(&options);

    if full_workload {
        println!(
            "\n  virtual-time identity vs PR 3 (aecd2ec): all {} cells exact\n\
             (duration_cycles, committed, MAC ops, state digests)",
            rows.len()
        );
    }

    let bench = Bench4 {
        experiment: "f4_replica_state",
        schema_version: 1,
        quick: options.quick,
        clients: CLIENTS,
        requests_per_client: requests,
        link_occupancy: LINK_OCCUPANCY,
        batch_flush: BATCH_FLUSH,
        pr3_baseline_commit: "aecd2ec",
        rows,
    };
    let json = serde_json::to_string(&bench).expect("serialize BENCH_4");
    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
    // Self-validation: the record on disk must parse back complete.
    let reread = std::fs::read_to_string("BENCH_4.json").expect("re-read BENCH_4.json");
    let parsed: serde_json::Value = serde_json::from_str(&reread).expect("BENCH_4.json malformed");
    let row_count = parsed["rows"].as_array().map(|a| a.len()).unwrap_or(0);
    assert_eq!(row_count, PR3_MESH_CELLS.len(), "BENCH_4.json row count");
    for row in parsed["rows"].as_array().expect("rows array") {
        assert_eq!(row["safety_ok"].as_bool(), Some(true), "unsafe row recorded: {row:?}");
        assert!(row["ops_per_kcycle"].as_f64().unwrap_or(0.0) > 0.0, "degenerate row: {row:?}");
    }
    println!("\nwrote BENCH_4.json ({row_count} rows, validated)");

    // The wall-clock headline: >= 1.3x on every mesh cell. Machine-
    // dependent, so a loud warning by default and a hard assert when
    // regenerating the committed record (RSOC_STRICT_WALL=1).
    if !options.quick {
        if worst_speedup < 1.3 {
            let msg = format!(
                "wall-time speedup vs PR 3 below 1.3x on at least one cell \
                 (worst {worst_speedup:.2}x) — machine-dependent; the committed \
                 record was produced on the reference machine"
            );
            if strict_wall {
                panic!("{msg}");
            }
            eprintln!("WARNING: {msg}");
        } else {
            println!("  wall-time: every cell >= 1.3x vs PR 3 (worst {worst_speedup:.2}x)");
        }
    }
    println!(
        "\nExpected shape: identical virtual-time columns to the PR 3 build\n\
         (the rework is invisible to the simulation) with wall ns/op well\n\
         below it on every cell — dense slot windows and hash indices in\n\
         place of BTreeMaps, zero payload copies on the message plane, an\n\
         O(1) timing-wheel event queue, and stack-resident USIG statements."
    );
}
