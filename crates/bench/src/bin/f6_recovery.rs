//! F6 — the recovery campaign: certified checkpoints, collaborative state
//! transfer, and rejuvenation re-join, swept over every protocol and batch
//! size with the safety/liveness oracle judging each cell.
//!
//! The paper's rejuvenation story (§II-C) only works if a recycled replica
//! can *re-join*: wiping volatile state is trivially safe for the replica
//! and trivially unsafe for the group unless the re-joiner can prove what
//! history it missed. This campaign exercises the full machinery end to
//! end: periodic certified checkpoints (f+1 matching MAC vouchers), log
//! truncation below the stable watermark, and collaborative state transfer
//! (certificate-checked snapshot + suffix replay) — and the attacks on it:
//! corrupted snapshots served to a recovering replica and forged
//! checkpoint certificates.
//!
//! Six named scenarios × {pbft, minbft, passive} × batch {1, 8} (the three
//! attack scenarios are BFT-only — passive's single snapshot source makes
//! "all servers corrupt" indistinguishable from source death, its
//! documented 2-replica residual):
//!
//! - `baseline_ckpt` — fault-free with checkpointing on: the voucher /
//!   certificate / truncation machinery must not disturb the workload.
//! - `rejuvenate_under_load` — a backup is wiped mid-load and must
//!   re-join through a genuine state transfer (asserted: ≥ 1 wipe AND
//!   ≥ 1 completed transfer).
//! - `crash_long_rejoin` — a backup sleeps through certified history.
//!   PBFT truncates below the watermark and must escalate to state
//!   transfer; MinBFT's 512-counter resend ring and passive's stability
//!   quorum (which cannot outrun its own lagging backup) absorb a gap
//!   this size by ordinary replay, with the watermark still advancing.
//! - `corrupted_snapshot` — every serving replica corrupts its snapshot
//!   bytes; the re-joiner must reject them all against the certificate
//!   digest (asserted: ≥ 1 rejection, 0 installs) while the rest of the
//!   cluster stays live.
//! - `forged_certificate` — a replica broadcasts forged checkpoint
//!   vouchers (garbage MACs and properly-signed digest lies); honest
//!   replicas must reject them while real certificates still form.
//! - `lying_responder` — one transfer responder serves a tampered log
//!   suffix (digest lies and fabricated slots) to a recovering replica.
//!   Suffix slots are accepted only on f+1 matching batch digests, so a
//!   single liar can at worst stall the tail — never make the re-joiner
//!   execute history the cluster did not commit (asserted: the re-join
//!   still completes via transfer, and every correct replica converges).
//!
//! Writes **`BENCH_6.json`** (self-validated by re-reading). Virtual-time
//! only: byte-identical for any `--jobs N` (checked in CI) and
//! machine-independent. `--scenario NAME` filters to one scenario and
//! `--list` prints the names.
//!
//! [`ScenarioOracle`]: rsoc_bft::adversary::ScenarioOracle

use rsoc_bench::{default_jobs, run_cells, Table};
use rsoc_bft::adversary::{ReplicaScript, Scenario, ScenarioOracle, Window};
use rsoc_bft::api::Cluster;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run_scenario, LatencyModel, RunConfig, ScenarioOutcome};
use serde::Serialize;

/// Workload clients per cell.
const CLIENTS: u32 = 4;
/// Requests per client per cell.
const REQUESTS: u64 = 12;
/// Batch sizes swept per scenario × protocol.
const BATCHES: [usize; 2] = [1, 8];
/// Certified-checkpoint interval (executed ops per watermark).
const CKPT_INTERVAL: u64 = 3;
/// Hard stop per cell (a wedged cell shows up as a liveness failure, not
/// a hang).
const MAX_CYCLES: u64 = 20_000_000;

/// Wipe time for the rejuvenation scenarios — inside the active load
/// phase AND after the first certificate stabilises, for every protocol ×
/// batch cell (re-join is traffic-driven, and a wipe before any
/// certificate exists re-joins by ordinary replay, which is not what
/// these rows measure). Batch-8 cells fill slots on the flush timer, so
/// both load and the first watermark land much later than at batch 1.
fn wipe_at(batch: usize) -> u64 {
    if batch == 1 {
        150
    } else {
        600
    }
}

/// One named scenario of the campaign matrix.
struct Spec {
    name: &'static str,
    /// What the scenario exercises (for the table and README matrix).
    attacks: &'static str,
    /// Protocols the scenario applies to.
    protocols: &'static [&'static str],
    /// Builds the scenario for a cluster of `n` replicas at batch size
    /// `batch` (timing-sensitive scripts shift with the batch regime).
    build: fn(n: u32, batch: usize) -> Scenario,
}

const ALL: &[&str] = &["pbft", "minbft", "passive"];
const BFT: &[&str] = &["pbft", "minbft"];

fn specs() -> Vec<Spec> {
    vec![
        Spec {
            name: "baseline_ckpt",
            attacks: "nothing (control row: checkpointing on, no faults)",
            protocols: ALL,
            build: |_, _| Scenario::none(),
        },
        Spec {
            name: "rejuvenate_under_load",
            attacks: "backup wiped mid-load; must re-join via state transfer",
            protocols: ALL,
            build: |n, batch| {
                // MinBFT (n = 3): the suffix install quorum is f+1 = 2, and
                // the 512-counter resend ring can replay a freshly-wiped
                // stream before the second matching responder lands — wipe
                // later so the re-join is pinned to a genuine transfer.
                let delay = if n == 3 { 200 } else { 0 };
                Scenario::none()
                    .script(n - 1, ReplicaScript::correct().rejuvenate_at(wipe_at(batch) + delay))
            },
        },
        Spec {
            name: "crash_long_rejoin",
            attacks: "backup sleeps through certified history; pbft escalates to transfer",
            protocols: ALL,
            build: |n, batch| {
                let heal = if batch == 1 { 180 } else { 700 };
                Scenario::none()
                    .script(n - 1, ReplicaScript::correct().crash(Window::new(60, heal)))
            },
        },
        Spec {
            name: "corrupted_snapshot",
            attacks: "every server corrupts transfer snapshots; re-joiner must reject all",
            protocols: BFT,
            build: |n, batch| {
                // Wiped a little later than `rejuvenate_under_load`: the
                // re-joiner must be mid-transfer when the corrupt
                // responses land (MinBFT's FillGap replay can otherwise
                // rebuild a very young stream before any response
                // arrives, leaving the rejection path unexercised).
                let mut s = Scenario::none()
                    .script(n - 1, ReplicaScript::correct().rejuvenate_at(wipe_at(batch) + 200));
                for r in 0..n - 1 {
                    s = s.script(
                        r,
                        ReplicaScript::correct().corrupt_snapshots(Window::new(0, MAX_CYCLES)),
                    );
                }
                s
            },
        },
        Spec {
            name: "lying_responder",
            attacks: "one transfer responder tampers its suffix; f+1 slot voting outvotes it",
            protocols: BFT,
            build: |n, batch| {
                // Same late wipe as `corrupted_snapshot`: the re-joiner
                // must be mid-transfer when the lying response lands.
                Scenario::none()
                    .script(n - 1, ReplicaScript::correct().rejuvenate_at(wipe_at(batch) + 200))
                    .script(
                        1,
                        ReplicaScript::correct().corrupt_suffixes(Window::new(0, MAX_CYCLES)),
                    )
            },
        },
        Spec {
            name: "forged_certificate",
            attacks: "forged checkpoint vouchers (garbage MACs + signed digest lies)",
            protocols: BFT,
            build: |_, _| {
                Scenario::none().script(
                    1,
                    ReplicaScript::correct().forge_checkpoints(Window::new(0, MAX_CYCLES)),
                )
            },
        },
    ]
}

#[derive(Serialize, Clone)]
struct Row {
    scenario: &'static str,
    attacks: &'static str,
    protocol: &'static str,
    batch_size: usize,
    committed: u64,
    expected_ops: u64,
    duration_cycles: u64,
    view_changes: u64,
    messages_total: u64,
    rejuvenations: u64,
    stable_seq: u64,
    state_transfers: u64,
    vouchers_rejected: u64,
    safety_ok: bool,
    digests_ok: bool,
    liveness_ok: bool,
    pass: bool,
}

#[derive(Serialize)]
struct Bench6 {
    experiment: &'static str,
    schema_version: u32,
    quick: bool,
    clients: u32,
    requests_per_client: u64,
    checkpoint_interval: u64,
    scenarios: usize,
    rows: Vec<Row>,
}

struct Options {
    json: bool,
    quick: bool,
    jobs: usize,
    scenario: Option<String>,
    list: bool,
}

fn parse_args() -> Options {
    let mut o =
        Options { json: false, quick: false, jobs: default_jobs(), scenario: None, list: false };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => o.json = true,
            "--quick" => o.quick = true,
            "--list" => o.list = true,
            "--scenario" => o.scenario = args.next(),
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                o.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a positive integer, got {v:?}");
                    std::process::exit(2);
                });
                o.jobs = o.jobs.max(1);
            }
            other => eprintln!("ignoring unknown argument: {other}"),
        }
    }
    o
}

fn config(batch: usize, seed: u64) -> RunConfig {
    RunConfig::builder()
        .f(1)
        .clients(CLIENTS)
        .requests_per_client(REQUESTS)
        .seed(seed)
        .latency(LatencyModel::Uniform { min: 5, max: 15 })
        .max_cycles(MAX_CYCLES)
        .batch_size(batch)
        .batch_flush(80)
        .checkpoint_interval(CKPT_INTERVAL)
        .build()
}

/// Runs one cell and judges it.
fn run_cell(spec: &Spec, protocol: &'static str, batch: usize, seed: u64) -> Row {
    let cfg = config(batch, seed);
    let expected = CLIENTS as u64 * REQUESTS;
    let (outcome, verdict, views, ckpt) = match protocol {
        "pbft" => {
            let mut c = PbftCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32, batch);
            let out = run_scenario(&mut c, &cfg, &scenario);
            judge(&c, out, expected)
        }
        "minbft" => {
            let mut c = MinBftCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32, batch);
            let out = run_scenario(&mut c, &cfg, &scenario);
            judge(&c, out, expected)
        }
        _ => {
            let mut c = PassiveCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32, batch);
            let out = run_scenario(&mut c, &cfg, &scenario);
            judge(&c, out, expected)
        }
    };
    Row {
        scenario: spec.name,
        attacks: spec.attacks,
        protocol,
        batch_size: batch,
        committed: outcome.report.committed,
        expected_ops: expected,
        duration_cycles: outcome.report.duration_cycles,
        view_changes: views,
        messages_total: outcome.report.messages_total,
        rejuvenations: outcome.rejuvenations,
        stable_seq: ckpt.0,
        state_transfers: ckpt.1,
        vouchers_rejected: ckpt.2,
        safety_ok: verdict.safety_ok,
        digests_ok: verdict.digests_ok,
        liveness_ok: verdict.liveness_ok,
        pass: verdict.pass(),
    }
}

/// Judges a finished cell and aggregates its checkpoint counters:
/// (max stable watermark, total transfers installed, total rejections).
fn judge<C: Cluster>(
    cluster: &C,
    outcome: ScenarioOutcome,
    expected: u64,
) -> (ScenarioOutcome, rsoc_bft::adversary::OracleVerdict, u64, (u64, u64, u64)) {
    use rsoc_bft::api::ReplicaNode;
    let verdict = ScenarioOracle::expecting_liveness().judge(cluster, &outcome.report, expected);
    let views = cluster
        .correct_replicas()
        .iter()
        .map(|r| cluster.nodes()[r.0 as usize].current_view())
        .max()
        .unwrap_or(0);
    let mut stable = 0u64;
    let mut transfers = 0u64;
    let mut rejected = 0u64;
    for node in cluster.nodes() {
        let s = node.checkpoint_stats();
        stable = stable.max(s.stable_seq);
        transfers += s.transfers;
        rejected += s.rejected;
    }
    (outcome, verdict, views, (stable, transfers, rejected))
}

/// Per-scenario acceptance beyond the oracle: the recovery-specific
/// counters each scenario exists to produce.
fn check_row(row: &Row) -> Result<(), String> {
    let fail = |what: &str| {
        Err(format!(
            "{}/{}/b{}: {what} (stable={} transfers={} rejuv={} rejected={})",
            row.scenario,
            row.protocol,
            row.batch_size,
            row.stable_seq,
            row.state_transfers,
            row.rejuvenations,
            row.vouchers_rejected
        ))
    };
    match row.scenario {
        "baseline_ckpt" => {
            if row.stable_seq == 0 {
                return fail("no certificate ever stabilised");
            }
            if row.state_transfers != 0 {
                return fail("fault-free cell should never need state transfer");
            }
        }
        "rejuvenate_under_load" => {
            if row.rejuvenations < 1 {
                return fail("wipe never fired");
            }
            if row.state_transfers < 1 {
                return fail("re-join did not go through state transfer");
            }
        }
        "crash_long_rejoin" => {
            // Only PBFT's truncation forces escalation at this run length:
            // MinBFT's 512-counter resend ring and passive's stability
            // quorum (which cannot outrun its own lagging backup) both
            // absorb the gap by ordinary replay — that absorption, with an
            // advancing watermark, is exactly what their rows assert.
            if row.protocol == "pbft" && row.state_transfers < 1 {
                return fail("recovery did not escalate to state transfer");
            }
            if row.stable_seq == 0 {
                return fail("no certificate stabilised across the outage");
            }
        }
        "corrupted_snapshot" => {
            if row.vouchers_rejected < 1 {
                return fail("corrupted snapshot was never rejected");
            }
            if row.state_transfers != 0 {
                return fail("a corrupted snapshot was installed");
            }
        }
        "forged_certificate" => {
            if row.vouchers_rejected < 1 {
                return fail("forged voucher was never rejected");
            }
            if row.stable_seq == 0 {
                return fail("forgery suppressed real certificates");
            }
        }
        "lying_responder" => {
            if row.rejuvenations < 1 {
                return fail("wipe never fired");
            }
            if row.state_transfers < 1 {
                return fail("the lie blocked the re-join entirely");
            }
        }
        _ => {}
    }
    Ok(())
}

fn main() {
    let options = parse_args();
    let specs = specs();
    if options.list {
        for s in &specs {
            println!("{}", s.name);
        }
        return;
    }
    let selected: Vec<(usize, &Spec)> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| options.scenario.as_deref().is_none_or(|want| want == s.name))
        .collect();
    if selected.is_empty() {
        eprintln!("unknown scenario {:?}; use --list", options.scenario);
        std::process::exit(2);
    }

    // The cell grid in canonical order: scenario × protocol × batch.
    let mut cells: Vec<(&Spec, &'static str, usize, u64)> = Vec::new();
    for (si, spec) in &selected {
        for (pi, proto) in spec.protocols.iter().enumerate() {
            for (bi, batch) in BATCHES.iter().enumerate() {
                // Per-cell seed: a pure function of the cell's coordinates
                // in the UNFILTERED matrix (never a shared sequential
                // stream) — a `--scenario` run replays exactly the same
                // traces as the full matrix.
                let seed = 0xF6_0000 ^ ((*si as u64) << 12) ^ ((pi as u64) << 8) ^ (bi as u64);
                cells.push((*spec, proto, *batch, seed));
            }
        }
    }

    let rows: Vec<Row> = run_cells(&cells, options.jobs, |(spec, proto, batch, seed)| {
        run_cell(spec, proto, *batch, *seed)
    });

    let mut table = Table::new(
        "F6 recovery campaign: certified checkpoints, state transfer, rejuvenation re-join",
        &[
            "scenario",
            "protocol",
            "batch",
            "committed",
            "cycles",
            "stable",
            "transfers",
            "rejuv",
            "rejected",
            "verdict",
        ],
    );
    let mut failures = Vec::new();
    for row in &rows {
        table.row(
            &[
                row.scenario.to_string(),
                row.protocol.to_string(),
                row.batch_size.to_string(),
                format!("{}/{}", row.committed, row.expected_ops),
                row.duration_cycles.to_string(),
                row.stable_seq.to_string(),
                row.state_transfers.to_string(),
                row.rejuvenations.to_string(),
                row.vouchers_rejected.to_string(),
                if row.pass { "pass".into() } else { "FAIL".into() },
            ],
            row,
        );
        if !row.pass {
            failures.push(format!(
                "{}/{}/b{}: safety={} digests={} liveness={} ({}/{} committed)",
                row.scenario,
                row.protocol,
                row.batch_size,
                row.safety_ok,
                row.digests_ok,
                row.liveness_ok,
                row.committed,
                row.expected_ops
            ));
        }
        if let Err(e) = check_row(row) {
            failures.push(e);
        }
    }
    let opts_for_print = rsoc_bench::ExpOptions {
        json: options.json,
        quick: options.quick,
        jobs: options.jobs,
        shard: None,
    };
    table.print(&opts_for_print);
    assert!(failures.is_empty(), "recovery failures:\n  {}", failures.join("\n  "));

    // Partial (filtered) runs are for CI log groups; only the full matrix
    // writes the committed record.
    if options.scenario.is_none() {
        let bench = Bench6 {
            experiment: "f6_recovery",
            schema_version: 1,
            quick: options.quick,
            clients: CLIENTS,
            requests_per_client: REQUESTS,
            checkpoint_interval: CKPT_INTERVAL,
            scenarios: specs.len(),
            rows,
        };
        let json = serde_json::to_string(&bench).expect("serialize BENCH_6");
        std::fs::write("BENCH_6.json", &json).expect("write BENCH_6.json");
        let reread = std::fs::read_to_string("BENCH_6.json").expect("re-read BENCH_6.json");
        let parsed: serde_json::Value =
            serde_json::from_str(&reread).expect("BENCH_6.json malformed");
        let row_count = parsed["rows"].as_array().map(|a| a.len()).unwrap_or(0);
        assert!(row_count >= 30, "campaign shrank below the 30-cell floor: {row_count}");
        for row in parsed["rows"].as_array().expect("rows array") {
            assert_eq!(row["pass"].as_bool(), Some(true), "failed cell recorded: {row:?}");
            assert_eq!(row["safety_ok"].as_bool(), Some(true), "unsafe cell recorded: {row:?}");
        }
        println!(
            "\nwrote BENCH_6.json ({row_count} cells across {} scenarios, all oracle-passing)",
            specs.len()
        );
    }
    println!(
        "\nExpected shape: every cell passes the oracle. Rejuvenation and\n\
         long-crash cells show completed state transfers (the re-join is\n\
         genuine, not a lucky replay); the attack cells show rejections —\n\
         corrupted snapshots never install, forged vouchers never\n\
         certify — while real certificates keep forming."
    );
}
