//! E2 — Hybrid register protection (§III's USIG example).
//!
//! Claim: "any bitflip in the counter will have catastrophic effects on the
//! consensus problem"; ECC registers "increase the complexity of the
//! circuit at the benefit of tolerating a certain number of bitflips".
//!
//! Sweep: SEU count per campaign × {plain, parity, secded} USIG counter
//! registers. Metrics: certified-duplicate/gap rate (undetected counter
//! corruption → broken uniqueness/monotonicity), fail-stop rate (detected,
//! USIG refuses service), and gate cost.

use rsoc_bench::{f3, ExpOptions, Table};
use rsoc_crypto::MacKey;
use rsoc_hw::{EccRegister, ParityRegister, PlainRegister, RegisterCell};
use rsoc_hybrid::{KeyRing, Usig, UsigError, UsigId};
use rsoc_sim::SimRng;
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize)]
struct Row {
    protection: &'static str,
    seu_per_campaign: u32,
    violation_rate: f64,
    failstop_rate: f64,
    clean_rate: f64,
    gate_cost: u64,
}

fn make_usig(protection: &str, ring: &std::sync::Arc<KeyRing>) -> Usig {
    let reg: Box<dyn RegisterCell> = match protection {
        "plain" => Box::new(PlainRegister::new(64)),
        "parity" => Box::new(ParityRegister::new(64)),
        "secded" => Box::new(EccRegister::new(64)),
        _ => unreachable!(),
    };
    Usig::new(UsigId(0), ring.clone(), reg)
}

/// One campaign: interleave UI creation with `seu` random counter flips;
/// classify the outcome.
enum Outcome {
    Clean,
    Violation, // duplicate or skipped certified counter (undetected!)
    FailStop,  // USIG detected corruption and refused
}

fn campaign(
    protection: &str,
    seu: u32,
    ring: &std::sync::Arc<KeyRing>,
    rng: &mut SimRng,
) -> Outcome {
    let mut usig = make_usig(protection, ring);
    let ops = 50u32;
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut expected_next = 1u64;
    let mut flips_left = seu;
    for i in 0..ops {
        // Spread the flips across the campaign.
        if flips_left > 0 && rng.chance(seu as f64 / ops as f64) {
            usig.inject_counter_flip(rng.below(80) as u32);
            flips_left -= 1;
        }
        match usig.create_ui(format!("msg {i}").as_bytes()) {
            Ok(ui) => {
                if !seen.insert(ui.counter) || ui.counter < expected_next {
                    return Outcome::Violation; // duplicate counter certified
                }
                if ui.counter > expected_next {
                    return Outcome::Violation; // silent gap (skipped values)
                }
                expected_next = ui.counter + 1;
            }
            Err(UsigError::CounterCorrupted) => return Outcome::FailStop,
            Err(UsigError::CounterExhausted) => return Outcome::Violation,
        }
    }
    Outcome::Clean
}

fn main() {
    let options = ExpOptions::from_args();
    let trials = options.trials(4_000);
    let ring = KeyRing::provision(0xE2, 1);
    let root = SimRng::new(0xE2);

    let mut table = Table::new(
        "E2 USIG counter under SEUs: violation (undetected) / fail-stop (detected) rates",
        &["protection", "seu", "violation", "failstop", "clean", "gates"],
    );
    // Cell grid: protection × SEU count. Per-trial RNG streams fork from
    // the root by a pure function of the cell indices, so cells are
    // independent and fan out across worker threads.
    let cells: Vec<(usize, &'static str, usize, u32)> = ["plain", "parity", "secded"]
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            [0u32, 1, 2, 4, 8].iter().enumerate().map(move |(si, s)| (pi, *p, si, *s))
        })
        .collect();
    let tallies = rsoc_bench::run_cells(&cells, options.jobs, |&(pi, protection, si, seu)| {
        let mut violations = 0u64;
        let mut failstops = 0u64;
        for t in 0..trials {
            let mut rng = root.fork((pi * 100 + si * 10) as u64 * 1_000_000 + t);
            match campaign(protection, seu, &ring, &mut rng) {
                Outcome::Clean => {}
                Outcome::Violation => violations += 1,
                Outcome::FailStop => failstops += 1,
            }
        }
        (violations, failstops)
    });
    for (&(_, protection, _, seu), &(violations, failstops)) in cells.iter().zip(&tallies) {
        let cost = make_usig(protection, &ring).gate_cost();
        {
            let seu = &seu;
            let v = violations as f64 / trials as f64;
            let fs = failstops as f64 / trials as f64;
            table.row(
                &[
                    protection.to_string(),
                    seu.to_string(),
                    f3(v),
                    f3(fs),
                    f3(1.0 - v - fs),
                    cost.to_string(),
                ],
                &Row {
                    protection,
                    seu_per_campaign: *seu,
                    violation_rate: v,
                    failstop_rate: fs,
                    clean_rate: 1.0 - v - fs,
                    gate_cost: cost,
                },
            );
        }
    }
    table.print(&options);
    let _ = MacKey::derive(0, "unused"); // keep the crypto dep honest in docs
    println!(
        "\nExpected shape (paper §III): plain registers convert SEUs into\n\
         *undetected* duplicate/gap certificates (consensus safety breaks);\n\
         parity converts them into fail-stops (safe but unavailable); SEC-DED\n\
         rides through single flips at a moderate gate-cost premium, staying\n\
         far below the simple-core hybridization bound."
    );
}
