//! Process-level chaos: SIGKILL a durable replica mid-commit, mutate its
//! WAL tail, restart it on the same address, and require the cluster to
//! re-converge to the exact simulator digest.
//!
//! For each protocol (PBFT f=1 → 4 replicas, MinBFT f=1 → 3 replicas)
//! and each WAL variant:
//!
//! * `clean`   — the kill alone; recovery replays the WAL as written;
//! * `torn`    — the last WAL segment loses its final bytes, the torn
//!   record must be truncated away on open;
//! * `corrupt` — the last WAL segment's final byte is flipped, the
//!   garbage record must fail its CRC and end replay at the longest
//!   valid prefix;
//!
//! the driver:
//!
//! 1. runs the deterministic simulator with the identical workload to
//!    obtain the expected digest;
//! 2. spawns one `rsoc-serve --data-dir --checkpoint-interval 8` per
//!    replica (ephemeral ports, `PEERS` rendezvous);
//! 3. starts `rsoc-client --expect-digest` and, while it is issuing,
//!    waits for the victim backup's WAL to grow, then SIGKILLs it
//!    mid-commit;
//! 4. applies the variant's WAL mutation and restarts the victim with
//!    `--listen <same addr>` and the same data directory — it must print
//!    a `RECOVERED` line (disk replay) and close the remaining gap via
//!    state transfer from its peers;
//! 5. requires the client to succeed (every replica settled on the
//!    simulator digest) and every surviving process — including the
//!    restarted victim — to exit cleanly reporting that digest.
//!
//! Usage: `f7_chaos [--clients N] [--requests N]` (defaults 4×60 = 240
//! committed ops per cell).

use rsoc_bft::api::Cluster;
use rsoc_bft::runner::{run, RunConfig};
use rsoc_transport::run::{digest_hex, Protocol};
use std::fs;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const PAYLOAD: usize = 64;
const CHECKPOINT_INTERVAL: u64 = 8;
/// Replica to kill: a backup in view 0 for both protocols, so the
/// cluster keeps committing through the outage.
const VICTIM: u32 = 2;
/// Kill once this many WAL bytes are durable — a few committed batches,
/// so every variant's mutation still leaves a valid prefix. Snapshot GC
/// caps the live WAL near one checkpoint interval of records, so the
/// threshold must sit well below that ceiling (and the kill then lands
/// early, while the client still has most of the workload to issue).
const KILL_WAL_BYTES: u64 = 400;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Clean,
    Torn,
    Corrupt,
}

impl Variant {
    const ALL: [Variant; 3] = [Variant::Clean, Variant::Torn, Variant::Corrupt];

    fn name(self) -> &'static str {
        match self {
            Variant::Clean => "clean",
            Variant::Torn => "torn",
            Variant::Corrupt => "corrupt",
        }
    }
}

fn main() -> ExitCode {
    let mut clients = 4u32;
    let mut requests = 60u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--clients", Some(v)) => clients = v.parse().expect("--clients"),
            ("--requests", Some(v)) => requests = v.parse().expect("--requests"),
            (other, _) => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    for protocol in [Protocol::Pbft, Protocol::MinBft] {
        for variant in Variant::ALL {
            if let Err(e) = chaos(protocol, variant, clients, requests) {
                eprintln!("f7_chaos[{}/{}]: {e}", protocol.name(), variant.name());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Simulator digest for the workload the cluster is about to serve.
fn simulator_digest(protocol: Protocol, clients: u32, requests: u64) -> Result<[u8; 32], String> {
    let config = RunConfig::builder()
        .f(1)
        .clients(clients)
        .requests_per_client(requests)
        .payload_size(PAYLOAD)
        .seed(SEED)
        .checkpoint_interval(CHECKPOINT_INTERVAL)
        .build();
    let expected_ops = u64::from(clients) * requests;
    let (committed, digest) = match protocol {
        Protocol::Pbft => {
            let mut cluster = rsoc_bft::pbft::PbftCluster::new(&config);
            let report = run(&mut cluster, &config);
            (report.committed, cluster.nodes()[0].state_digest())
        }
        Protocol::MinBft => {
            let mut cluster = rsoc_bft::minbft::MinBftCluster::new(&config);
            let report = run(&mut cluster, &config);
            (report.committed, cluster.nodes()[0].state_digest())
        }
    };
    if committed != expected_ops {
        return Err(format!("simulator committed {committed}, expected {expected_ops}"));
    }
    Ok(digest)
}

/// A serve process plus the stdout reader its rendezvous line came from
/// (kept so the `RECOVERED` / `DONE` lines can be read at exit).
struct Replica {
    child: Child,
    reader: BufReader<ChildStdout>,
}

fn spawn_replica(
    bin: &Path,
    protocol: Protocol,
    id: u32,
    data_dir: &Path,
    listen: Option<&str>,
) -> Result<(Replica, String), String> {
    let mut cmd = Command::new(bin);
    cmd.args(["--protocol", protocol.name()])
        .args(["--id", &id.to_string()])
        .args(["--f", "1"])
        .args(["--seed", &SEED.to_string()])
        .args(["--checkpoint-interval", &CHECKPOINT_INTERVAL.to_string()])
        .arg("--data-dir")
        .arg(data_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    if let Some(addr) = listen {
        cmd.args(["--listen", addr]);
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawning {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("no stdout")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("reading LISTENING line: {e}"))?;
    let addr = line
        .strip_prefix("LISTENING ")
        .ok_or_else(|| format!("replica {id}: expected LISTENING line, got {line:?}"))?
        .trim()
        .to_string();
    Ok((Replica { child, reader }, addr))
}

fn send_peers(replica: &mut Replica, peers_line: &str) -> Result<(), String> {
    replica
        .child
        .stdin
        .as_mut()
        .ok_or("no stdin")?
        .write_all(peers_line.as_bytes())
        .map_err(|e| format!("writing PEERS line: {e}"))
}

/// Total durable WAL bytes under `dir` (0 while the dir is still empty).
fn wal_bytes(dir: &Path) -> u64 {
    let Ok(segs) = rsoc_store::wal_segments(dir) else { return 0 };
    segs.iter().filter_map(|p| fs::metadata(p).ok()).map(|m| m.len()).sum()
}

/// The newest WAL segment that actually holds records.
fn last_nonempty_segment(dir: &Path) -> Result<PathBuf, String> {
    rsoc_store::wal_segments(dir)
        .map_err(|e| format!("listing WAL segments: {e}"))?
        .into_iter()
        .rev()
        .find(|p| fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
        .ok_or_else(|| "no non-empty WAL segment to mutate".to_string())
}

/// Applies the variant's damage to the victim's WAL tail.
fn mutate_wal(dir: &Path, variant: Variant) -> Result<(), String> {
    match variant {
        Variant::Clean => Ok(()),
        Variant::Torn => {
            // Chop a few bytes off the tail — a record now ends mid-CRC
            // or mid-payload, exactly what a crash during a page-cache
            // flush leaves behind.
            let seg = last_nonempty_segment(dir)?;
            let len = fs::metadata(&seg).map_err(|e| format!("stat {}: {e}", seg.display()))?.len();
            let file = fs::OpenOptions::new()
                .write(true)
                .open(&seg)
                .map_err(|e| format!("open {}: {e}", seg.display()))?;
            file.set_len(len.saturating_sub(3))
                .map_err(|e| format!("truncate {}: {e}", seg.display()))?;
            Ok(())
        }
        Variant::Corrupt => {
            // Flip the final byte — the last record's CRC no longer
            // matches, so replay must reject it (not panic, not apply).
            let seg = last_nonempty_segment(dir)?;
            let mut file = fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&seg)
                .map_err(|e| format!("open {}: {e}", seg.display()))?;
            let len = file.metadata().map_err(|e| format!("stat: {e}"))?.len();
            let mut byte = [0u8; 1];
            file.seek(SeekFrom::Start(len - 1)).map_err(|e| format!("seek: {e}"))?;
            file.read_exact(&mut byte).map_err(|e| format!("read tail byte: {e}"))?;
            byte[0] ^= 0xFF;
            file.seek(SeekFrom::Start(len - 1)).map_err(|e| format!("seek: {e}"))?;
            file.write_all(&byte).map_err(|e| format!("write tail byte: {e}"))?;
            Ok(())
        }
    }
}

fn chaos(protocol: Protocol, variant: Variant, clients: u32, requests: u64) -> Result<(), String> {
    let expected = simulator_digest(protocol, clients, requests)?;
    let n = protocol.cluster_size(1);
    println!(
        "[{}/{}] n={n}, {clients} clients x {requests} ops, expecting digest {}",
        protocol.name(),
        variant.name(),
        digest_hex(&expected)
    );

    let serve_bin = sibling_binary("rsoc-serve")?;
    let client_bin = sibling_binary("rsoc-client")?;

    // Fresh per-cell data directories.
    let root = std::env::temp_dir().join(format!(
        "rsoc-chaos-{}-{}-{}",
        std::process::id(),
        protocol.name(),
        variant.name()
    ));
    let _ = fs::remove_dir_all(&root);
    let data_dir = |id: u32| root.join(format!("replica-{id}"));

    // Phase 1: start every replica durable, collect addresses.
    let mut replicas: Vec<Replica> = Vec::new();
    let mut addrs: Vec<String> = Vec::new();
    for id in 0..n {
        let (replica, addr) = spawn_replica(&serve_bin, protocol, id, &data_dir(id), None)?;
        replicas.push(replica);
        addrs.push(addr);
    }
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    for replica in &mut replicas {
        send_peers(replica, &peers_line)?;
    }

    // Phase 2: the client starts issuing the workload in the background.
    let mut client = Command::new(&client_bin)
        .args(["--protocol", protocol.name()])
        .args(["--f", "1"])
        .args(["--seed", &SEED.to_string()])
        .args(["--clients", &clients.to_string()])
        .args(["--requests", &requests.to_string()])
        .args(["--payload", &PAYLOAD.to_string()])
        .args(["--addrs", &addrs.join(",")])
        .args(["--expect-digest", &digest_hex(&expected)])
        .args(["--settle-timeout-ms", "60000"])
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", client_bin.display()))?;

    // Phase 3: wait for the victim's WAL to take commits, then SIGKILL
    // it mid-run. The threshold guarantees the mutation below damages at
    // most the final record of a multi-record log.
    let victim_dir = data_dir(VICTIM);
    let deadline = Instant::now() + Duration::from_secs(30);
    while wal_bytes(&victim_dir) < KILL_WAL_BYTES {
        if Instant::now() > deadline {
            let _ = client.kill();
            for r in &mut replicas {
                let _ = r.child.kill();
            }
            return Err(format!(
                "victim WAL never reached {KILL_WAL_BYTES} bytes (has {})",
                wal_bytes(&victim_dir)
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut victim = replicas.remove(VICTIM as usize);
    victim.child.kill().map_err(|e| format!("SIGKILL victim: {e}"))?;
    victim.child.wait().map_err(|e| format!("reaping victim: {e}"))?;
    drop(victim);
    println!(
        "[{}/{}] killed replica {VICTIM} at {} WAL bytes",
        protocol.name(),
        variant.name(),
        wal_bytes(&victim_dir)
    );

    // Phase 4: damage the WAL tail per the variant, restart the victim
    // on its original address, and re-run the rendezvous for it.
    mutate_wal(&victim_dir, variant)?;
    let (mut restarted, addr) =
        spawn_replica(&serve_bin, protocol, VICTIM, &victim_dir, Some(&addrs[VICTIM as usize]))?;
    if addr != addrs[VICTIM as usize] {
        return Err(format!("restarted victim bound {addr}, wanted {}", addrs[VICTIM as usize]));
    }
    send_peers(&mut restarted, &peers_line)?;
    replicas.insert(VICTIM as usize, restarted);

    // Phase 5: the client must finish — its --expect-digest settle gate
    // only passes once every replica (victim included) reports the
    // simulator digest.
    let status = client.wait().map_err(|e| format!("waiting for client: {e}"))?;
    let client_failed = !status.success();

    let mut failures = Vec::new();
    if client_failed {
        failures.push("rsoc-client exited nonzero".to_string());
    }
    let mut recovered_line = None;
    for (idx, replica) in replicas.into_iter().enumerate() {
        let Replica { mut child, mut reader } = replica;
        if client_failed {
            let _ = child.kill();
        }
        match child.wait() {
            Ok(s) if s.success() || client_failed => {}
            Ok(s) => failures.push(format!("replica {idx} exited with {s}")),
            Err(e) => failures.push(format!("replica {idx} wait: {e}")),
        }
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        for line in rest.lines() {
            if idx == VICTIM as usize && line.starts_with("RECOVERED ") {
                recovered_line = Some(line.to_string());
            }
            if let Some(done) = line.strip_prefix("DONE ") {
                if !done.contains(&format!("digest={}", digest_hex(&expected))) {
                    failures.push(format!("replica {idx} DONE digest diverged: {done}"));
                }
            }
        }
    }

    // The restarted victim must have replayed durable state from disk,
    // not just joined empty.
    match &recovered_line {
        Some(line) => {
            let committed = line
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("committed="))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            if committed == 0 {
                failures.push(format!("victim recovered nothing from its WAL: {line}"));
            } else {
                println!("[{}/{}] victim {line}", protocol.name(), variant.name());
            }
        }
        None => failures.push("restarted victim printed no RECOVERED line".to_string()),
    }

    let _ = fs::remove_dir_all(&root);
    if failures.is_empty() {
        println!(
            "[{}/{}] ok: {} ops, cluster re-converged to the simulator digest",
            protocol.name(),
            variant.name(),
            u64::from(clients) * requests
        );
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Locates a cluster binary next to this driver (same target profile).
fn sibling_binary(name: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("current_exe has no parent")?;
    let path = dir.join(name);
    if path.exists() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found — build it first: cargo build -p rsoc_transport --bin {name}",
            path.display()
        ))
    }
}
