//! Perf-regression gate: compares a freshly generated bench record
//! against the committed baseline, cell by cell.
//!
//! The swept metrics are *deterministic* (virtual-time ops/kcycle from a
//! seeded simulation), so a quick CI run reproduces the committed
//! full-run values to within ~2%; the tolerance band exists to absorb
//! that quick-vs-full trial-count difference plus intentional small
//! shifts, while any real regression (>15% by default) fails the job.
//!
//! ```text
//! check_regression --baseline BENCH_2.baseline.json --current BENCH_2.json \
//!     [--metric ops_per_kcycle] [--tolerance 0.15] [--lower-metric macs_per_op]
//! ```
//!
//! Rows are matched on every identity field present (`generator`,
//! `protocol`, `latency_model`, `batch_size`, `client_window`). A
//! baseline row with no matching current row fails (a silently dropped
//! cell is a regression too), as does any current row with
//! `safety_ok = false` — or one whose sparse latency histogram
//! (`hist_bucket_counts`) does not sum to its `committed` count: a
//! record that lost commits in a merge is not a valid measurement.
//!
//! `--metric` is higher-is-better (throughput); a cell fails when it
//! drops below `baseline × (1 − tolerance)`. `--lower-metric` names an
//! additional lower-is-better metric (e.g. `macs_per_op`, so
//! authentication amortization can't silently rot): a cell fails when it
//! *rises* above `baseline × (1 + tolerance)`. Rows lacking the
//! lower-metric field in the baseline are skipped for that check.
//! Exit code: 0 clean, 1 regression, 2 usage/parse error.

use serde_json::Value;

/// Fields that identify a swept cell (order fixed for stable output).
const KEY_FIELDS: [&str; 5] =
    ["generator", "protocol", "latency_model", "batch_size", "client_window"];

fn row_key(row: &Value) -> String {
    let mut parts = Vec::new();
    for f in KEY_FIELDS {
        let v = &row[f];
        if let Some(s) = v.as_str() {
            parts.push(format!("{f}={s}"));
        } else if let Some(n) = v.as_f64() {
            parts.push(format!("{f}={n}"));
        }
    }
    parts.join(" ")
}

/// Histogram self-consistency: a row carrying a sparse latency histogram
/// (`hist_bucket_indices` / `hist_bucket_counts`) must account for every
/// committed op — ragged arrays or a count-sum ≠ `committed` means the
/// record was produced by a broken merge (e.g. a bad shard stitch) and
/// cannot be trusted as a baseline or a current run. Rows without
/// histogram fields (earlier campaigns) are skipped.
fn hist_inconsistency(row: &Value) -> Option<String> {
    let counts = row["hist_bucket_counts"].as_array()?;
    let Some(indices) = row["hist_bucket_indices"].as_array() else {
        return Some("hist_bucket_counts present but hist_bucket_indices missing".into());
    };
    if indices.len() != counts.len() {
        return Some(format!(
            "ragged histogram: {} bucket indices vs {} counts",
            indices.len(),
            counts.len()
        ));
    }
    let Some(committed) = row["committed"].as_u64() else {
        return Some("histogram present but committed count missing".into());
    };
    let sum: u64 = counts.iter().filter_map(Value::as_u64).sum();
    if sum != committed {
        return Some(format!("histogram sums to {sum} but committed is {committed}"));
    }
    None
}

fn load_rows(path: &str) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e:?}"))?;
    let rows = value["rows"].as_array().ok_or_else(|| format!("{path}: no rows array"))?;
    Ok(rows.clone())
}

/// Usage errors are reported on stderr with exit 2 — never a panic: the
/// gate's exit codes are part of its CI contract (a panic's 101 would be
/// indistinguishable from a crash).
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut metric = "ops_per_kcycle".to_string();
    let mut lower_metric: Option<String> = None;
    let mut tolerance = 0.15f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| usage_error(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--baseline" => baseline_path = Some(take("--baseline")),
            "--current" => current_path = Some(take("--current")),
            "--metric" => metric = take("--metric"),
            "--lower-metric" => lower_metric = Some(take("--lower-metric")),
            "--tolerance" => {
                tolerance = take("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--tolerance must be a float"))
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        eprintln!(
            "usage: check_regression --baseline <file> --current <file> \
             [--metric m] [--tolerance t] [--lower-metric m]"
        );
        std::process::exit(2);
    };

    let baseline = match load_rows(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let current = match load_rows(&current_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut failures = 0u32;
    println!(
        "perf gate: {metric}, tolerance {:.0}% ({baseline_path} -> {current_path})",
        tolerance * 100.0
    );
    // Self-consistency before any comparison: a current row whose
    // histogram doesn't account for its committed ops disqualifies the
    // whole record, regardless of how the throughput numbers look.
    for row in &current {
        if let Some(why) = hist_inconsistency(row) {
            println!("  FAIL {}: {why}", row_key(row));
            failures += 1;
        }
    }
    for base_row in &baseline {
        let key = row_key(base_row);
        let Some(cur_row) = current.iter().find(|r| row_key(r) == key) else {
            println!("  FAIL {key}: cell missing from current run");
            failures += 1;
            continue;
        };
        if cur_row["safety_ok"].as_bool() == Some(false) {
            println!("  FAIL {key}: safety violation in current run");
            failures += 1;
            continue;
        }
        let (Some(base), Some(cur)) =
            (base_row[metric.as_str()].as_f64(), cur_row[metric.as_str()].as_f64())
        else {
            println!("  FAIL {key}: metric {metric} missing");
            failures += 1;
            continue;
        };
        let ratio = if base > 0.0 { cur / base } else { 1.0 };
        let verdict = if ratio < 1.0 - tolerance {
            failures += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!("  {verdict:4} {key}: {base:.3} -> {cur:.3} ({:+.1}%)", (ratio - 1.0) * 100.0);

        // Lower-is-better companion metric: fail on a rise beyond band.
        if let Some(lm) = &lower_metric {
            let (Some(lbase), Some(lcur)) =
                (base_row[lm.as_str()].as_f64(), cur_row[lm.as_str()].as_f64())
            else {
                continue; // metric truly absent for this cell
            };
            // A zero baseline records "this cost does not exist here"
            // (e.g. the MAC-free pbft model): ANY appearance is a
            // regression, not a free pass.
            let regressed = if lbase > 0.0 { lcur / lbase > 1.0 + tolerance } else { lcur > 0.0 };
            let lverdict = if regressed {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            let delta = if lbase > 0.0 { (lcur / lbase - 1.0) * 100.0 } else { 0.0 };
            println!("  {lverdict:4} {key} [{lm}]: {lbase:.3} -> {lcur:.3} ({delta:+.1}%)");
        }
    }
    if failures > 0 {
        eprintln!("{failures} cell(s) regressed beyond the {:.0}% band", tolerance * 100.0);
        std::process::exit(1);
    }
    println!("all {} cells within band", baseline.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("check_regression_{}_{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp fixture");
        path
    }

    #[test]
    fn truncated_json_is_an_error_not_a_panic() {
        // A partially written record (interrupted bench run, truncated
        // artifact download) must surface as Err so main exits 2.
        let path = write_temp("truncated.json", r#"{"rows": [{"protocol": "pbft", "ops_per"#);
        let err = load_rows(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("parse"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_rows_array_is_an_error() {
        let path = write_temp("norows.json", r#"{"meta": "no rows here"}"#);
        let err = load_rows(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("no rows array"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unreadable_path_is_an_error() {
        let err = load_rows("/nonexistent/definitely_missing.json").unwrap_err();
        assert!(err.contains("read"), "{err}");
    }

    #[test]
    fn consistent_histogram_passes_and_rows_without_one_are_skipped() {
        let good: Value = serde_json::from_str(
            r#"{"protocol": "pbft", "committed": 10,
                "hist_bucket_indices": [3, 7], "hist_bucket_counts": [4, 6]}"#,
        )
        .unwrap();
        assert_eq!(hist_inconsistency(&good), None);
        // Earlier campaigns carry no histogram: not an inconsistency.
        let legacy: Value =
            serde_json::from_str(r#"{"protocol": "pbft", "ops_per_kcycle": 1.5}"#).unwrap();
        assert_eq!(hist_inconsistency(&legacy), None);
    }

    #[test]
    fn histogram_not_summing_to_committed_is_flagged() {
        let short: Value = serde_json::from_str(
            r#"{"protocol": "pbft", "committed": 10,
                "hist_bucket_indices": [3, 7], "hist_bucket_counts": [4, 5]}"#,
        )
        .unwrap();
        let why = hist_inconsistency(&short).expect("lost commit must be flagged");
        assert!(why.contains("sums to 9"), "{why}");

        let ragged: Value = serde_json::from_str(
            r#"{"protocol": "pbft", "committed": 4,
                "hist_bucket_indices": [3], "hist_bucket_counts": [3, 1]}"#,
        )
        .unwrap();
        let why = hist_inconsistency(&ragged).expect("ragged arrays must be flagged");
        assert!(why.contains("ragged"), "{why}");

        let no_committed: Value = serde_json::from_str(
            r#"{"protocol": "pbft",
                "hist_bucket_indices": [3], "hist_bucket_counts": [3]}"#,
        )
        .unwrap();
        assert!(hist_inconsistency(&no_committed).is_some());
    }

    #[test]
    fn generator_field_distinguishes_cells_in_row_keys() {
        let a: Value = serde_json::from_str(
            r#"{"generator": "steady_poisson", "protocol": "pbft", "batch_size": 8}"#,
        )
        .unwrap();
        let b: Value = serde_json::from_str(
            r#"{"generator": "flash_zipf", "protocol": "pbft", "batch_size": 8}"#,
        )
        .unwrap();
        assert_ne!(row_key(&a), row_key(&b));
        assert_eq!(row_key(&a), "generator=steady_poisson protocol=pbft batch_size=8");
    }

    #[test]
    fn well_formed_record_loads_rows() {
        let path = write_temp(
            "good.json",
            r#"{"rows": [{"protocol": "pbft", "batch_size": 8, "ops_per_kcycle": 1.5}]}"#,
        );
        let rows = load_rows(path.to_str().unwrap()).expect("well-formed record");
        assert_eq!(rows.len(), 1);
        assert_eq!(row_key(&rows[0]), "protocol=pbft batch_size=8");
        std::fs::remove_file(path).ok();
    }
}
