//! E4 — Passive vs active replication (§II-A).
//!
//! Claim: passive replication is cheap (one backup, two messages/op) but
//! "recovery is slow, requires reliable detection and is not seamless to
//! the user"; active replication masks failures without a visible gap.
//!
//! Scenario: primary crashes mid-workload. Sweep over failure-detector
//! timeouts for passive; MinBFT (f=1) as the active comparison. Metrics:
//! steady-state cost, median latency, and worst-case (failover) latency.

use rsoc_bench::{f1, ExpOptions, Table};
use rsoc_bft::behavior::Behavior;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::runner::{run, RunConfig};
use rsoc_bft::ReplicaId;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    detect_timeout: u64,
    replicas: usize,
    msgs_per_commit: f64,
    lat_p50: f64,
    lat_max: f64,
    committed: u64,
}

fn main() {
    let options = ExpOptions::from_args();
    let requests = options.trials(100);
    let crash_at = 100u64; // mid-workload even in --quick runs

    let mut table = Table::new(
        "E4 crash of the primary at t=100 (mid-workload): failover gap vs active masking",
        &["scheme", "detect_to", "replicas", "msg/op", "lat_p50", "lat_max", "committed"],
    );

    // Passive with a detector-timeout sweep.
    for detect in [400u64, 800, 1600, 3200] {
        let config = RunConfig {
            f: 1,
            clients: 1,
            requests_per_client: requests,
            seed: 0xE4,
            client_timeout: 300,
            max_cycles: 400_000_000,
            ..Default::default()
        };
        let mut cluster = PassiveCluster::with_detector(detect / 4, detect);
        cluster.set_behavior(ReplicaId(0), Behavior::CrashAt(crash_at));
        let report = run(&mut cluster, &config);
        let p50 = report.commit_latency.median().unwrap_or(0.0);
        let max = report.commit_latency.quantile(1.0).unwrap_or(0.0);
        table.row(
            &[
                "passive".into(),
                detect.to_string(),
                report.n_replicas.to_string(),
                f1(report.messages_per_commit()),
                f1(p50),
                f1(max),
                report.committed.to_string(),
            ],
            &Row {
                scheme: "passive".into(),
                detect_timeout: detect,
                replicas: report.n_replicas,
                msgs_per_commit: report.messages_per_commit(),
                lat_p50: p50,
                lat_max: max,
                committed: report.committed,
            },
        );
    }

    // Active (MinBFT) with the same crash.
    let config = RunConfig {
        f: 1,
        clients: 1,
        requests_per_client: requests,
        seed: 0xE4,
        client_timeout: 300,
        max_cycles: 400_000_000,
        ..Default::default()
    };
    let mut cluster = MinBftCluster::new(&config);
    // Crash a backup (not the primary) first for the pure-masking case...
    cluster.set_behavior(ReplicaId(2), Behavior::CrashAt(crash_at));
    let report = run(&mut cluster, &config);
    let p50 = report.commit_latency.median().unwrap_or(0.0);
    let max = report.commit_latency.quantile(1.0).unwrap_or(0.0);
    table.row(
        &[
            "minbft(backup↓)".into(),
            "-".into(),
            report.n_replicas.to_string(),
            f1(report.messages_per_commit()),
            f1(p50),
            f1(max),
            report.committed.to_string(),
        ],
        &Row {
            scheme: "minbft-backup-crash".into(),
            detect_timeout: 0,
            replicas: report.n_replicas,
            msgs_per_commit: report.messages_per_commit(),
            lat_p50: p50,
            lat_max: max,
            committed: report.committed,
        },
    );
    // ... and the primary-crash case (view change, bounded by patience).
    let mut cluster = MinBftCluster::new(&config);
    cluster.set_behavior(ReplicaId(0), Behavior::CrashAt(crash_at));
    let report = run(&mut cluster, &config);
    let p50 = report.commit_latency.median().unwrap_or(0.0);
    let max = report.commit_latency.quantile(1.0).unwrap_or(0.0);
    table.row(
        &[
            "minbft(primary↓)".into(),
            "-".into(),
            report.n_replicas.to_string(),
            f1(report.messages_per_commit()),
            f1(p50),
            f1(max),
            report.committed.to_string(),
        ],
        &Row {
            scheme: "minbft-primary-crash".into(),
            detect_timeout: 0,
            replicas: report.n_replicas,
            msgs_per_commit: report.messages_per_commit(),
            lat_p50: p50,
            lat_max: max,
            committed: report.committed,
        },
    );
    table.print(&options);
    println!(
        "\nExpected shape (paper §II-A): passive is cheapest per op but its\n\
         worst-case latency grows with the detector timeout (the visible\n\
         failover gap); active replication masks a backup crash with no\n\
         latency spike at all, and bounds even a primary crash by the view-\n\
         change patience rather than an end-to-end detector."
    );
}
