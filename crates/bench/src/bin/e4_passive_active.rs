//! E4 — Passive vs active replication (§II-A).
//!
//! Claim: passive replication is cheap (one backup, two messages/op) but
//! "recovery is slow, requires reliable detection and is not seamless to
//! the user"; active replication masks failures without a visible gap.
//!
//! Scenario: primary crashes mid-workload. Sweep over failure-detector
//! timeouts for passive; MinBFT (f=1) as the active comparison. Metrics:
//! steady-state cost, median latency, and worst-case (failover) latency.

use rsoc_bench::{f1, ExpOptions, Table};
use rsoc_bft::adversary::Behavior;
use rsoc_bft::api::Cluster;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::runner::{run, RunConfig};
use rsoc_bft::ReplicaId;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    detect_timeout: u64,
    replicas: usize,
    msgs_per_commit: f64,
    lat_p50: f64,
    lat_max: f64,
    committed: u64,
}

fn main() {
    let options = ExpOptions::from_args();
    let requests = options.trials(100);
    let crash_at = 100u64; // mid-workload even in --quick runs

    let mut table = Table::new(
        "E4 crash of the primary at t=100 (mid-workload): failover gap vs active masking",
        &["scheme", "detect_to", "replicas", "msg/op", "lat_p50", "lat_max", "committed"],
    );

    /// One swept scenario: the passive pair at a detector timeout, or a
    /// MinBFT cluster crashing a backup / the primary.
    #[derive(Clone, Copy)]
    enum Cell {
        Passive { detect: u64 },
        MinBft { crash_primary: bool },
    }
    let cells: Vec<Cell> = [400u64, 800, 1600, 3200]
        .into_iter()
        .map(|detect| Cell::Passive { detect })
        .chain([Cell::MinBft { crash_primary: false }, Cell::MinBft { crash_primary: true }])
        .collect();

    let reports = rsoc_bench::run_cells(&cells, options.jobs, |cell| {
        let config = RunConfig::builder()
            .f(1)
            .clients(1)
            .requests_per_client(requests)
            .seed(0xE4)
            .client_timeout(300)
            .max_cycles(400_000_000)
            .build();
        match *cell {
            Cell::Passive { detect } => {
                let mut cluster = PassiveCluster::with_detector(detect / 4, detect);
                cluster.set_script(ReplicaId(0), Behavior::CrashAt(crash_at).into());
                run(&mut cluster, &config)
            }
            Cell::MinBft { crash_primary } => {
                let mut cluster = MinBftCluster::new(&config);
                // A crashed backup is pure masking; a crashed primary is
                // a view change bounded by the request patience.
                let victim = if crash_primary { ReplicaId(0) } else { ReplicaId(2) };
                cluster.set_script(victim, Behavior::CrashAt(crash_at).into());
                run(&mut cluster, &config)
            }
        }
    });

    for (cell, report) in cells.iter().zip(&reports) {
        let (label, scheme, detect) = match *cell {
            Cell::Passive { detect } => ("passive".to_string(), "passive", detect),
            Cell::MinBft { crash_primary: false } => {
                ("minbft(backup↓)".to_string(), "minbft-backup-crash", 0)
            }
            Cell::MinBft { crash_primary: true } => {
                ("minbft(primary↓)".to_string(), "minbft-primary-crash", 0)
            }
        };
        let p50 = report.commit_latency.median().unwrap_or(0.0);
        let max = report.commit_latency.quantile(1.0).unwrap_or(0.0);
        table.row(
            &[
                label,
                if detect > 0 { detect.to_string() } else { "-".into() },
                report.n_replicas.to_string(),
                f1(report.messages_per_commit()),
                f1(p50),
                f1(max),
                report.committed.to_string(),
            ],
            &Row {
                scheme: scheme.into(),
                detect_timeout: detect,
                replicas: report.n_replicas,
                msgs_per_commit: report.messages_per_commit(),
                lat_p50: p50,
                lat_max: max,
                committed: report.committed,
            },
        );
    }
    table.print(&options);
    println!(
        "\nExpected shape (paper §II-A): passive is cheapest per op but its\n\
         worst-case latency grows with the detector timeout (the visible\n\
         failover gap); active replication masks a backup crash with no\n\
         latency spike at all, and bounds even a primary crash by the view-\n\
         change patience rather than an end-to-end detector."
    );
}
