//! F3 — Simulation-core rework: wall-clock cost of the harness itself,
//! and client pipelining on the E3 mesh workload.
//!
//! PR 3 rebuilt the hot path under every experiment: slab/freelist event
//! arenas (runner + engine), an indexed next-event-time queue in the NoC,
//! an `Arc<Batch>` wire format (O(1) broadcast fan-out), a SHA-NI
//! compression kernel under every MAC, a mask-based SEC-DED codec under
//! every USIG counter access, and windowed clients (`client_window = k`
//! outstanding requests) so primaries can fill batches without extra
//! client tiles.
//!
//! This binary measures both dimensions on the E3 mesh placement:
//!
//! * **host wall-clock** ns per committed op for each (protocol, batch,
//!   window) cell — compared, at `window = 1`, against the recorded PR 2
//!   baseline for the identical cells;
//! * **virtual-time** ops/kcycle — where pipelined windows must show
//!   fuller batches (no worse, typically better, than window 1).
//!
//! Writes **`BENCH_3.json`** (machine-readable, self-validated by
//! re-reading) extending the repo's recorded perf trajectory started by
//! `BENCH_2.json`. Wall-clock numbers are machine-dependent, so the
//! ≥1.5× speedup check is a loud warning by default and a hard assert
//! only with `RSOC_STRICT_WALL=1` (used when regenerating the committed
//! record); the CI perf gate compares the deterministic ops/kcycle
//! metrics instead (`check_regression`).

use rsoc_bench::{f1, f3, ExpOptions, Table};
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run, LatencyModel, RunConfig, RunReport};
use serde::Serialize;

/// Same client population as the F2 baseline sweep.
const CLIENTS: u32 = 16;
/// Same egress-serialization cost as F2 (the cost batching amortizes).
const LINK_OCCUPANCY: u64 = 8;
/// Same flush patience as F2.
const BATCH_FLUSH: u64 = 100;
/// Fault threshold of every swept cell.
const F: u32 = 1;

const BATCH_SIZES: [usize; 3] = [1, 8, 16];
/// Windows swept for batched cells. Unbatched (`batch = 1`) runs stay at
/// window 1: k outstanding requests per client against a serialized
/// egress port with no batching to amortize it floods the backups'
/// request patience (the F2 sweep documents the same backlog constraint)
/// — pipelining is a batching amplifier, not a substitute.
const WINDOWS: [usize; 3] = [1, 4, 8];

/// Wall-clock ns per committed op measured for the identical
/// (protocol, batch, window=1) mesh cells on the **PR 2 build**
/// (commit `4c268e6`, the state before the simulation-core rework) on
/// the reference dev machine — the recorded "before" side of this PR's
/// headline. Regenerate by checking out PR 2 and timing `f2_batching`'s
/// mesh cells (two-run averages).
const PR2_MESH_WALL_NS_PER_OP: [(&str, usize, f64); 6] = [
    ("pbft", 1, 26_700.0),
    ("pbft", 8, 12_000.0),
    ("pbft", 16, 11_000.0),
    ("minbft", 1, 37_600.0),
    ("minbft", 8, 14_900.0),
    ("minbft", 16, 11_300.0),
];

#[derive(Serialize, Clone)]
struct Row {
    protocol: &'static str,
    batch_size: usize,
    client_window: usize,
    committed: u64,
    ops_per_kcycle: f64,
    wall_ns_per_op: f64,
    p50_latency: f64,
    p99_latency: f64,
    safety_ok: bool,
}

#[derive(Serialize)]
struct WallSummary {
    protocol: &'static str,
    batch_size: usize,
    pr2_wall_ns_per_op: f64,
    wall_ns_per_op: f64,
    wall_speedup_vs_pr2: f64,
}

#[derive(Serialize)]
struct WindowSummary {
    protocol: &'static str,
    batch_size: usize,
    ops_per_kcycle_w1: f64,
    ops_per_kcycle_w8: f64,
    pipelining_gain: f64,
}

#[derive(Serialize)]
struct Bench3 {
    experiment: &'static str,
    schema_version: u32,
    quick: bool,
    clients: u32,
    requests_per_client: u64,
    link_occupancy: u64,
    batch_flush: u64,
    pr2_baseline_commit: &'static str,
    rows: Vec<Row>,
    wall_summaries: Vec<WallSummary>,
    window_summaries: Vec<WindowSummary>,
}

/// The E3 placement: replica i on tile (i % 4, i / 4), clients at the I/O
/// corner of the mesh (identical to F2's mesh cells).
fn mesh_latency(n: u32) -> LatencyModel {
    LatencyModel::MeshHops {
        replica_at: (0..n).map(|i| ((i % 4) as u16, (i / 4) as u16)).collect(),
        client_at: (0, 0),
        per_hop: 1,
        overhead: 3,
    }
}

fn config(requests: u64, batch: usize, window: usize, n: u32, seed: u64) -> RunConfig {
    RunConfig::builder()
        .f(F)
        .clients(CLIENTS)
        .requests_per_client(requests)
        .seed(seed)
        .latency(mesh_latency(n))
        .max_cycles(50_000_000)
        .batch_size(batch)
        .batch_flush(BATCH_FLUSH)
        .link_occupancy(LINK_OCCUPANCY)
        .client_window(window)
        // A window of k multiplies the in-flight population (and thus the
        // tail commit latency under egress serialization) by ~k; the
        // retransmit timeout must scale with it or the tail turns into a
        // retransmission storm that feeds itself. drop_rate is 0 here, so
        // a generous timeout costs nothing.
        .client_timeout(4_000 * window.max(1) as u64)
        .request_patience(1_500 * window.max(1) as u64)
        .build()
}

fn run_cell(protocol: &'static str, cfg: &RunConfig) -> RunReport {
    match protocol {
        "pbft" => run(&mut PbftCluster::new(cfg), cfg),
        _ => run(&mut MinBftCluster::new(cfg), cfg),
    }
}

fn main() {
    let options = ExpOptions::from_args();
    let requests = options.trials(100);
    let strict_wall = std::env::var("RSOC_STRICT_WALL").map(|v| v == "1").unwrap_or(false);

    let mut table = Table::new(
        "F3 simulation core: wall ns/op and ops/kcycle x protocol x batch x window",
        &["protocol", "batch", "window", "ops/kcycle", "wall ns/op", "lat_p50", "lat_p99"],
    );
    let mut rows: Vec<Row> = Vec::new();

    // Canonical cell grid; cells are pure functions of their parameters
    // and fan out across worker threads. (Wall-clock numbers co-scheduled
    // with other cells are noisier; the committed record is regenerated
    // with --jobs 1, and the CI gate reads only the deterministic
    // virtual-time metrics.)
    let cells: Vec<(&'static str, usize, usize)> = ["pbft", "minbft"]
        .into_iter()
        .flat_map(|p| {
            BATCH_SIZES.into_iter().flat_map(move |b| {
                WINDOWS.into_iter().filter(move |w| b != 1 || *w == 1).map(move |w| (p, b, w))
            })
        })
        .collect();
    let results = rsoc_bench::run_cells(&cells, options.jobs, |&(protocol, batch, window)| {
        let n = if protocol == "pbft" { 3 * F + 1 } else { 2 * F + 1 };
        // Seed formula matches F2's mesh cells so the window=1 rows are
        // the same workload PR 2's baseline timed.
        let seed = 0xF2 + batch as u64;
        let cfg = config(requests, batch, window, n, seed);
        // Wall time is min-of-N (runs are deterministic, so the
        // repetitions differ only by scheduler/cache noise; the minimum
        // is the least-perturbed observation).
        let reps = if options.quick { 1 } else { 5 };
        let mut best_ns = u128::MAX;
        let mut report = None;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let r = run_cell(protocol, &cfg);
            best_ns = best_ns.min(t0.elapsed().as_nanos());
            report = Some(r);
        }
        (report.expect("at least one rep"), best_ns)
    });
    for (&(protocol, batch, window), (report, best_ns)) in cells.iter().zip(&results) {
        let wall = *best_ns as f64 / report.committed.max(1) as f64;
        assert!(report.safety_ok, "{protocol} batch={batch} window={window} unsafe");
        assert_eq!(
            report.committed,
            CLIENTS as u64 * requests,
            "{protocol} batch={batch} window={window} failed to commit the workload"
        );
        let row = Row {
            protocol,
            batch_size: batch,
            client_window: window,
            committed: report.committed,
            ops_per_kcycle: report.throughput_per_kcycle(),
            wall_ns_per_op: wall,
            p50_latency: report.commit_latency.median().unwrap_or(0.0),
            p99_latency: report.commit_latency.quantile(0.99).unwrap_or(0.0),
            safety_ok: report.safety_ok,
        };
        table.row(
            &[
                protocol.to_string(),
                batch.to_string(),
                window.to_string(),
                f3(row.ops_per_kcycle),
                f1(row.wall_ns_per_op),
                f1(row.p50_latency),
                f1(row.p99_latency),
            ],
            &row,
        );
        rows.push(row);
    }
    table.print(&options);

    let cell = |proto: &str, batch: usize, window: usize| -> &Row {
        rows.iter()
            .find(|r| r.protocol == proto && r.batch_size == batch && r.client_window == window)
            .expect("swept cell")
    };

    // Headline 1: host wall-clock vs the PR 2 build on identical cells.
    let mut wall_summaries = Vec::new();
    println!("\n  wall-clock vs PR 2 build (window=1, same mesh workload):");
    for (proto, batch, pr2) in PR2_MESH_WALL_NS_PER_OP {
        let now = cell(proto, batch, 1);
        let speedup = pr2 / now.wall_ns_per_op;
        println!(
            "    {proto}/batch={batch}: {:.0} -> {:.0} ns/op ({speedup:.2}x)",
            pr2, now.wall_ns_per_op
        );
        wall_summaries.push(WallSummary {
            protocol: now.protocol,
            batch_size: batch,
            pr2_wall_ns_per_op: pr2,
            wall_ns_per_op: now.wall_ns_per_op,
            wall_speedup_vs_pr2: speedup,
        });
    }

    // Headline 2: pipelined windows raise virtual-time throughput.
    let mut window_summaries = Vec::new();
    for proto in ["pbft", "minbft"] {
        for batch in BATCH_SIZES.into_iter().filter(|b| *b > 1) {
            let w1 = cell(proto, batch, 1);
            let w8 = cell(proto, batch, 8);
            window_summaries.push(WindowSummary {
                protocol: w1.protocol,
                batch_size: batch,
                ops_per_kcycle_w1: w1.ops_per_kcycle,
                ops_per_kcycle_w8: w8.ops_per_kcycle,
                pipelining_gain: w8.ops_per_kcycle / w1.ops_per_kcycle,
            });
        }
    }
    println!("\n  client pipelining (window=8 vs 1, ops/kcycle):");
    for s in &window_summaries {
        println!(
            "    {}/batch={}: {:.1} -> {:.1} ({:.2}x)",
            s.protocol, s.batch_size, s.ops_per_kcycle_w1, s.ops_per_kcycle_w8, s.pipelining_gain
        );
    }

    let bench = Bench3 {
        experiment: "f3_simcore",
        schema_version: 1,
        quick: options.quick,
        clients: CLIENTS,
        requests_per_client: requests,
        link_occupancy: LINK_OCCUPANCY,
        batch_flush: BATCH_FLUSH,
        pr2_baseline_commit: "4c268e6",
        rows,
        wall_summaries,
        window_summaries,
    };
    let json = serde_json::to_string(&bench).expect("serialize BENCH_3");
    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
    // Self-validation: the perf record must parse back complete; a
    // malformed file should fail loudly, not seed the trajectory.
    let reread = std::fs::read_to_string("BENCH_3.json").expect("re-read BENCH_3.json");
    let parsed: serde_json::Value = serde_json::from_str(&reread).expect("BENCH_3.json malformed");
    let row_count = parsed["rows"].as_array().map(|a| a.len()).unwrap_or(0);
    // Per protocol: one unbatched cell plus a full window sweep per batched size.
    let expected = 2 * (1 + (BATCH_SIZES.len() - 1) * WINDOWS.len());
    assert_eq!(row_count, expected, "BENCH_3.json row count");
    let wall_count = parsed["wall_summaries"].as_array().map(|a| a.len()).unwrap_or(0);
    assert_eq!(wall_count, PR2_MESH_WALL_NS_PER_OP.len(), "BENCH_3.json wall summaries");
    println!("\nwrote BENCH_3.json ({row_count} rows, validated)");

    // Quick runs are too short for stable ratios; full runs gate the
    // virtual-time claims (deterministic) and, under RSOC_STRICT_WALL=1,
    // the machine-dependent wall-clock headline too.
    if !options.quick {
        for s in &bench.window_summaries {
            assert!(
                s.pipelining_gain >= 0.99,
                "{}/batch={} pipelining regressed ops/kcycle: {:.2}x",
                s.protocol,
                s.batch_size,
                s.pipelining_gain
            );
        }
        let worst =
            bench.wall_summaries.iter().map(|s| s.wall_speedup_vs_pr2).fold(f64::MAX, f64::min);
        if worst < 1.5 {
            let msg = format!(
                "wall-clock speedup vs PR 2 below 1.5x (worst {worst:.2}x) — \
                 machine-dependent; the committed record was produced on the \
                 reference machine"
            );
            if strict_wall {
                panic!("{msg}");
            }
            eprintln!("WARNING: {msg}");
        }
    }
    println!(
        "\nExpected shape: wall ns/op drops well below the PR 2 baseline at\n\
         every window=1 cell (slab arenas + Arc fan-out + SHA-NI + SEC-DED\n\
         masks); ops/kcycle rises with window at batch >= 8 because pipelined\n\
         clients actually fill the batches that closed-loop demand cannot."
    );
}
