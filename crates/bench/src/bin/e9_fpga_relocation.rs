//! E9 — Spatial rejuvenation vs grid-fabric backdoors (§II-C, §II-E).
//!
//! Claim: "FPGAs allow for even smarter techniques, e.g., to rejuvenate to
//! diverse softcore variants that are loaded in different FPGA spatial
//! locations, which can avoid potential backdoors in the FPGA grid fabric."
//!
//! Scenario: a fabric with hidden backdoored frames (density sweep). A
//! softcore runs for E epochs; a block spending an epoch on a backdoored
//! frame is compromised that epoch (and the operator notices with
//! probability q, learning to avoid those frames). Policies: fixed
//! placement, random relocation each epoch, avoidance relocation
//! (random + blacklist of discovered frames).

use rsoc_bench::{f3, ExpOptions, Table};
use rsoc_crypto::MacKey;
use rsoc_fpga::{Bitstream, FpgaFabric, FrameId, Icap, Principal, ReconfigEngine, Region};
use rsoc_sim::SimRng;
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize)]
struct Row {
    policy: &'static str,
    backdoor_density: f64,
    compromised_epoch_frac: f64,
    max_compromised_streak: f64,
    reconfig_cycles_per_epoch: f64,
}

const FRAME_WORDS: usize = 4;
const BLOCK: u64 = 1;
const BLOCK_FRAMES: u32 = 2;
const EPOCHS: u32 = 40;
const DETECT_PROB: f64 = 0.6;

#[derive(Clone, Copy, PartialEq)]
enum PolicyKind {
    Fixed,
    Random,
    Avoidance,
}

fn run_campaign(policy: PolicyKind, density: f64, rng: &mut SimRng) -> (f64, f64, f64) {
    let key = MacKey::derive(0xE9, "bs");
    let mut fabric = FpgaFabric::new(8, 8, FRAME_WORDS);
    fabric.plant_backdoors(density, rng);
    let mut icap = Icap::new(key.clone());
    icap.allow(Principal(0), Region::new(0, 64));
    let mut engine = ReconfigEngine::new(fabric, icap);

    // Initial placement at a random free region.
    let choices = engine.fabric().free_regions(BLOCK_FRAMES);
    let region = *rng.choose(&choices).expect("fabric has room");
    let bs = Bitstream::for_variant(1, region, FRAME_WORDS, &key);
    let receipt = engine.reconfigure(Principal(0), region, &bs, BLOCK).expect("initial config");
    let mut cycles = receipt.cycles as f64;

    let mut blacklist: BTreeSet<u32> = BTreeSet::new();
    let mut compromised_epochs = 0u32;
    let mut streak = 0u32;
    let mut max_streak = 0u32;
    for _ in 0..EPOCHS {
        let here = engine.fabric().block_region(BLOCK).expect("placed");
        if engine.fabric().region_backdoored(here) {
            compromised_epochs += 1;
            streak += 1;
            max_streak = max_streak.max(streak);
            if policy == PolicyKind::Avoidance && rng.chance(DETECT_PROB) {
                for f in here.frames() {
                    blacklist.insert(f.0);
                }
            }
        } else {
            streak = 0;
        }
        match policy {
            PolicyKind::Fixed => {}
            PolicyKind::Random | PolicyKind::Avoidance => {
                let mut options: Vec<Region> = engine.fabric().free_regions(BLOCK_FRAMES);
                if policy == PolicyKind::Avoidance {
                    options.retain(|r| r.frames().all(|f: FrameId| !blacklist.contains(&f.0)));
                }
                if let Some(dest) = rng.choose(&options).copied() {
                    if let Ok(receipt) = engine.relocate(Principal(0), BLOCK, dest) {
                        cycles += receipt.cycles as f64;
                    }
                }
            }
        }
    }
    (compromised_epochs as f64 / EPOCHS as f64, max_streak as f64, cycles / EPOCHS as f64)
}

fn main() {
    let options = ExpOptions::from_args();
    let trials = options.trials(300);
    let root = SimRng::new(0xE9);

    let mut table = Table::new(
        "E9 softcore on a backdoored grid: placement policy vs compromised-epoch fraction",
        &["policy", "density", "compromised_frac", "max_streak", "reconf_cyc/epoch"],
    );
    // Cell grid: density × policy, with per-trial RNG streams forked from
    // the root by cell indices — independent, so the sweep fans out.
    let policies = [
        ("fixed", PolicyKind::Fixed),
        ("random-reloc", PolicyKind::Random),
        ("avoidance-reloc", PolicyKind::Avoidance),
    ];
    let cells: Vec<(usize, f64, usize, &'static str, PolicyKind)> = [0.02f64, 0.05, 0.10, 0.20]
        .iter()
        .enumerate()
        .flat_map(|(di, d)| {
            policies
                .iter()
                .enumerate()
                .map(move |(pi, (name, policy))| (di, *d, pi, *name, *policy))
        })
        .collect();
    let sums = rsoc_bench::run_cells(&cells, options.jobs, |&(di, density, pi, _, policy)| {
        let mut frac_sum = 0.0;
        let mut streak_sum = 0.0;
        let mut cyc_sum = 0.0;
        for t in 0..trials {
            let mut rng = root.fork((di * 10 + pi) as u64 * 1_000_000 + t);
            let (frac, streak, cyc) = run_campaign(policy, density, &mut rng);
            frac_sum += frac;
            streak_sum += streak;
            cyc_sum += cyc;
        }
        (frac_sum, streak_sum, cyc_sum)
    });
    for (&(_, density, _, name, _), &(frac_sum, streak_sum, cyc_sum)) in cells.iter().zip(&sums) {
        let n = trials as f64;
        table.row(
            &[
                name.to_string(),
                f3(density),
                f3(frac_sum / n),
                format!("{:.1}", streak_sum / n),
                format!("{:.0}", cyc_sum / n),
            ],
            &Row {
                policy: name,
                backdoor_density: density,
                compromised_epoch_frac: frac_sum / n,
                max_compromised_streak: streak_sum / n,
                reconfig_cycles_per_epoch: cyc_sum / n,
            },
        );
    }
    table.print(&options);
    println!(
        "\nExpected shape (paper §II-C/E): fixed placement and random\n\
         relocation have the same *mean* exposure (≈ per-region backdoor\n\
         probability), but fixed placement concentrates it: when the initial\n\
         region is backdoored the block is owned for the whole mission\n\
         (max_streak ≈ all epochs), while relocation breaks the streaks into\n\
         short windows. Avoidance relocation additionally *learns* bad frames\n\
         and pushes the mean exposure itself down — the paper's spatial-\n\
         rejuvenation argument — at a constant reconfiguration cost."
    );
}
