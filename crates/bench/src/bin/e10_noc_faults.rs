//! E10 — NoC resilience under link faults (§I "networked systems on chip").
//!
//! Claim: the on-chip interconnect is itself a fault point; tile-level
//! replication needs resilient delivery underneath.
//!
//! Sweep: directed-link fault rate × {plain XY, XY + retransmission,
//! fault-adaptive routing} on an 8×8 mesh with uniform-random traffic.
//! Metrics: delivery ratio, mean delivered latency.

use rsoc_bench::{f1 as fmt1, f3, ExpOptions, Table};
use rsoc_noc::network::{Network, NetworkConfig};
use rsoc_noc::retransmit::Retransmitter;
use rsoc_noc::{Routing, TrafficPattern};
use rsoc_sim::SimRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: &'static str,
    link_fault_rate: f64,
    delivery_ratio: f64,
    mean_latency: f64,
}

const MESSAGES: usize = 200;

fn fresh_net(routing: Routing, fault_rate: f64, rng: &mut SimRng) -> Network {
    let mesh = rsoc_noc::Mesh2d::new(8, 8);
    let mut net = Network::new(mesh, NetworkConfig { routing, ..Default::default() });
    net.kill_links_randomly(fault_rate, rng);
    net
}

fn run_plain(routing: Routing, fault_rate: f64, rng: &mut SimRng) -> (f64, f64) {
    let mut net = fresh_net(routing, fault_rate, rng);
    let mesh = *net.mesh();
    let pairs = TrafficPattern::UniformRandom.generate(&mesh, MESSAGES, rng);
    for (s, d) in pairs {
        net.inject(s, d, 1);
        // Pace injection to limit contention effects.
        net.tick();
    }
    net.drain(100_000);
    (net.stats().delivery_ratio(), net.stats().mean_latency().unwrap_or(0.0))
}

fn run_retransmit(fault_rate: f64, rng: &mut SimRng) -> (f64, f64) {
    let mut net = fresh_net(Routing::Xy, fault_rate, rng);
    let mesh = *net.mesh();
    let mut rt = Retransmitter::new(200, 4);
    let pairs = TrafficPattern::UniformRandom.generate(&mesh, MESSAGES, rng);
    for (s, d) in pairs {
        rt.send(&mut net, s, d);
        net.tick();
        rt.harvest(&mut net);
    }
    let mut guard = 0;
    while rt.pending() > 0 && guard < 200_000 {
        net.tick();
        rt.harvest(&mut net);
        guard += 1;
    }
    let delivered: Vec<_> = rt.outcomes().iter().filter(|o| o.delivered).collect();
    let mean_lat = if delivered.is_empty() {
        0.0
    } else {
        delivered.iter().map(|o| o.latency as f64).sum::<f64>() / delivered.len() as f64
    };
    (rt.delivery_ratio(), mean_lat)
}

fn main() {
    let options = ExpOptions::from_args();
    let trials = options.trials(30);
    let root = SimRng::new(0xE10);

    let mut table = Table::new(
        "E10 8x8 mesh, uniform traffic: delivery under dead links",
        &["scheme", "fault_rate", "delivery", "mean_latency"],
    );
    // Cell grid: fault rate × routing scheme; trial RNG streams fork by
    // cell indices, so the sweep fans out across threads.
    let cells: Vec<(usize, f64, usize, &'static str)> = [0.0f64, 0.01, 0.02, 0.05, 0.10]
        .iter()
        .enumerate()
        .flat_map(|(fi, r)| {
            ["xy", "xy+retx", "adaptive"].iter().enumerate().map(move |(si, s)| (fi, *r, si, *s))
        })
        .collect();
    let sums = rsoc_bench::run_cells(&cells, options.jobs, |&(fi, rate, si, scheme)| {
        let mut dr_sum = 0.0;
        let mut lat_sum = 0.0;
        for t in 0..trials {
            let mut rng = root.fork((fi * 10 + si) as u64 * 100_000 + t);
            let (dr, lat) = match scheme {
                "xy" => run_plain(Routing::Xy, rate, &mut rng),
                "adaptive" => {
                    run_plain(Routing::FaultAdaptive { max_misroutes: 12 }, rate, &mut rng)
                }
                _ => run_retransmit(rate, &mut rng),
            };
            dr_sum += dr;
            lat_sum += lat;
        }
        (dr_sum, lat_sum)
    });
    for (&(_, rate, _, scheme), &(dr_sum, lat_sum)) in cells.iter().zip(&sums) {
        let n = trials as f64;
        table.row(
            &[scheme.to_string(), f3(rate), f3(dr_sum / n), fmt1(lat_sum / n)],
            &Row {
                scheme,
                link_fault_rate: rate,
                delivery_ratio: dr_sum / n,
                mean_latency: lat_sum / n,
            },
        );
    }
    table.print(&options);
    println!(
        "\nExpected shape (paper §I): plain XY loses messages roughly in\n\
         proportion to the fraction of source-destination pairs whose unique\n\
         path crosses a dead link; retransmission recovers only transient\n\
         losses (dead links defeat it after max attempts on the same path);\n\
         fault-adaptive routing keeps delivery near 1 well past 5% dead\n\
         links by paying detour latency."
    );
}
