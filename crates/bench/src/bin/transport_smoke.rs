//! Real-transport smoke: a localhost TCP cluster of separate OS
//! processes must commit the full workload and converge to the *same*
//! state digest a simulator run of the identical request log computes.
//!
//! For each protocol (PBFT f=1 → 4 replicas, MinBFT f=1 → 3 replicas):
//!
//! 1. run the deterministic simulator with the exact cluster workload to
//!    obtain the expected digest;
//! 2. spawn one `rsoc-serve` process per replica (ephemeral ports,
//!    collected from their `LISTENING` lines, rendezvoused via a `PEERS`
//!    stdin line);
//! 3. spawn `rsoc-client` with `--expect-digest` — it fails unless every
//!    replica converges to the simulator's digest;
//! 4. check every process exits cleanly.
//!
//! Usage: `transport_smoke [--clients N] [--requests N]` (defaults
//! 4×60 = 240 committed ops per protocol, above the 200-op gate).

use rsoc_bft::api::Cluster;
use rsoc_bft::runner::{run, RunConfig};
use rsoc_transport::run::{digest_hex, Protocol};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};

const SEED: u64 = 42;
const PAYLOAD: usize = 64;

fn main() -> ExitCode {
    let mut clients = 4u32;
    let mut requests = 60u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--clients", Some(v)) => clients = v.parse().expect("--clients"),
            ("--requests", Some(v)) => requests = v.parse().expect("--requests"),
            (other, _) => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    for protocol in [Protocol::Pbft, Protocol::MinBft] {
        if let Err(e) = smoke(protocol, clients, requests) {
            eprintln!("transport_smoke[{}]: {e}", protocol.name());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Simulator digest for the workload the cluster is about to serve.
fn simulator_digest(protocol: Protocol, clients: u32, requests: u64) -> Result<[u8; 32], String> {
    let config = RunConfig::builder()
        .f(1)
        .clients(clients)
        .requests_per_client(requests)
        .payload_size(PAYLOAD)
        .seed(SEED)
        .build();
    let expected_ops = u64::from(clients) * requests;
    let (committed, digest) = match protocol {
        Protocol::Pbft => {
            let mut cluster = rsoc_bft::pbft::PbftCluster::new(&config);
            let report = run(&mut cluster, &config);
            (report.committed, cluster.nodes()[0].state_digest())
        }
        Protocol::MinBft => {
            let mut cluster = rsoc_bft::minbft::MinBftCluster::new(&config);
            let report = run(&mut cluster, &config);
            (report.committed, cluster.nodes()[0].state_digest())
        }
    };
    if committed != expected_ops {
        return Err(format!("simulator committed {committed}, expected {expected_ops}"));
    }
    Ok(digest)
}

fn smoke(protocol: Protocol, clients: u32, requests: u64) -> Result<(), String> {
    let expected = simulator_digest(protocol, clients, requests)?;
    let n = protocol.cluster_size(1);
    println!(
        "[{}] n={n}, {clients} clients x {requests} ops, expecting digest {}",
        protocol.name(),
        digest_hex(&expected)
    );

    let serve_bin = sibling_binary("rsoc-serve")?;
    let client_bin = sibling_binary("rsoc-client")?;

    // Phase 1: start every replica and collect its ephemeral address.
    let mut replicas: Vec<Child> = Vec::new();
    let mut addrs: Vec<String> = Vec::new();
    for id in 0..n {
        let mut child = Command::new(&serve_bin)
            .args(["--protocol", protocol.name()])
            .args(["--id", &id.to_string()])
            .args(["--f", "1"])
            .args(["--seed", &SEED.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawning {}: {e}", serve_bin.display()))?;
        let stdout = child.stdout.as_mut().ok_or("no stdout")?;
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("reading LISTENING line: {e}"))?;
        let addr = line
            .strip_prefix("LISTENING ")
            .ok_or_else(|| format!("replica {id}: expected LISTENING line, got {line:?}"))?
            .trim()
            .to_string();
        addrs.push(addr);
        replicas.push(child);
    }

    // Phase 2: rendezvous — every replica learns every address.
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    for child in &mut replicas {
        child
            .stdin
            .as_mut()
            .ok_or("no stdin")?
            .write_all(peers_line.as_bytes())
            .map_err(|e| format!("writing PEERS line: {e}"))?;
    }

    // Phase 3: the external client drives the run and gates on digest.
    let status = Command::new(&client_bin)
        .args(["--protocol", protocol.name()])
        .args(["--f", "1"])
        .args(["--seed", &SEED.to_string()])
        .args(["--clients", &clients.to_string()])
        .args(["--requests", &requests.to_string()])
        .args(["--payload", &PAYLOAD.to_string()])
        .args(["--addrs", &addrs.join(",")])
        .args(["--expect-digest", &digest_hex(&expected)])
        .status()
        .map_err(|e| format!("spawning {}: {e}", client_bin.display()))?;
    let client_failed = !status.success();

    // Phase 4: replicas exit through the client's Shutdown.
    let mut failures = Vec::new();
    if client_failed {
        failures.push("rsoc-client exited nonzero".to_string());
    }
    for (id, child) in replicas.iter_mut().enumerate() {
        if client_failed {
            // No Shutdown was sent; don't hang on a live serve loop.
            let _ = child.kill();
        }
        match child.wait() {
            Ok(s) if s.success() || client_failed => {}
            Ok(s) => failures.push(format!("replica {id} exited with {s}")),
            Err(e) => failures.push(format!("replica {id} wait: {e}")),
        }
    }
    if failures.is_empty() {
        println!(
            "[{}] ok: {} ops, digest matches the simulator",
            protocol.name(),
            u64::from(clients) * requests
        );
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Locates a cluster binary next to this driver (same target profile).
fn sibling_binary(name: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("current_exe has no parent")?;
    let path = dir.join(name);
    if path.exists() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found — build it first: cargo build -p rsoc_transport --bin {name}",
            path.display()
        ))
    }
}
