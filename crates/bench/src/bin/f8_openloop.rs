//! F8 — the open-loop production-scale workload campaign.
//!
//! Every earlier campaign drove the protocols with closed-loop clients: a
//! bounded window of outstanding ops, so a slow cluster simply slows its
//! own load down. Production traffic does not do that — arrivals keep
//! coming whether or not the system keeps up. This campaign drives the
//! [`run_open_loop`] plane: rate-scheduled arrival processes (Poisson,
//! bursty), modulated by diurnal ramps and flash crowds, issued by a
//! skewed population of up to ~10^5.5 distinct users (hot-set / Zipf),
//! with commit latency recorded in log-bucketed mergeable histograms
//! (p50/p99/p999 per cell).
//!
//! The grid (canonical order: generator × protocol × batch):
//!
//! - `steady_poisson` — a plain Poisson plane over every protocol at
//!   batch 1 and 8: the control rows.
//! - `diurnal_hotset` — a diurnal rate swing over a hot-set population:
//!   the queueing tail must follow the ramp, not diverge.
//! - `flash_zipf` — bursty arrivals + a 3× flash crowd over a Zipf
//!   population: short overload absorbed by queueing, p999 visible.
//! - `production_scale` — one **million-op** cell each for pbft and
//!   passive over a 262k-user population (≥ 10^5 distinct identities in
//!   one process, no per-client allocation).
//! - `minbft_ring_aging` — MinBFT's million-op cell, with a backup
//!   crashed through ~940 slots so the peers' 512-counter resend rings
//!   retire past its gap: on heal, FillGap *must* escalate through the
//!   certified-checkpoint hint path (`hint_resyncs ≥ 1` is asserted —
//!   this is the long-run path a short closed-loop run can never age
//!   into).
//!
//! Writes **`BENCH_8.json`** (self-validated by re-reading: every row's
//! histogram bucket counts must sum to its committed count). Virtual-time
//! only: byte-identical for any `--jobs N`. `--shard i/N` computes only
//! the cells with canonical index ≡ i (mod N) and writes
//! `BENCH_8.shard{i}of{N}.jsonl`; `--stitch OUT IN...` re-assembles shard
//! files into a document byte-identical to the unsharded `BENCH_8.json` —
//! the multi-machine sweep contract CI's shard-stitch gate asserts.

use rsoc_bench::{default_jobs, run_cells_sharded, Table};
use rsoc_bft::adversary::{ReplicaScript, Scenario};
use rsoc_bft::api::{Cluster, ReplicaNode};
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run_open_loop, LatencyModel, OpenLoopReport, OpenLoopSpec, RunConfig};
use rsoc_sim::{Arrival, KeyDist, RateMod, Window};
use serde::Serialize;
use serde_json::Value;

/// Hard stop per cell — the million-op cells at mean gap 40 span ~40M
/// cycles; a wedged cell shows up as `committed < issued`, not a hang.
const MAX_CYCLES: u64 = 200_000_000;

/// The shared production-scale generator: Poisson arrivals at mean gap
/// 40 under a gentle diurnal swing, issued by a 262144-user hot-set
/// population (half the traffic from 512 hot users, half uniform).
const PRODUCTION_USERS: KeyDist = KeyDist::HotSet { n: 262_144, hot: 512, hot_per_mille: 500 };

const ALL: &[&str] = &["pbft", "minbft", "passive"];

/// One generator of the campaign matrix.
struct Spec {
    name: &'static str,
    /// Generator summary (for the table and README matrix).
    generator: &'static str,
    arrival: Arrival,
    /// Rate envelopes (built per cell; `RateMod` is `Copy` but windows
    /// read more clearly constructed in one place).
    mods: fn() -> Vec<RateMod>,
    users: KeyDist,
    /// Full-run op count (scaled by `--quick`).
    total_ops: u64,
    /// Certified-checkpoint interval (0 = subsystem off).
    ckpt_interval: u64,
    protocols: &'static [&'static str],
    batches: &'static [usize],
    /// Scenario for a cluster of `n` replicas.
    build: fn(n: u32) -> Scenario,
}

fn specs() -> Vec<Spec> {
    vec![
        Spec {
            name: "steady_poisson",
            generator: "poisson(gap 150) / uniform 20k users",
            arrival: Arrival::Poisson { mean_gap: 150 },
            mods: Vec::new,
            users: KeyDist::Uniform { n: 20_000 },
            total_ops: 20_000,
            ckpt_interval: 0,
            protocols: ALL,
            batches: &[1, 8],
            build: |_| Scenario::none(),
        },
        Spec {
            name: "diurnal_hotset",
            generator: "poisson(gap 50) * diurnal 0.6-1.8x / hotset 50k users",
            arrival: Arrival::Poisson { mean_gap: 50 },
            mods: || {
                vec![RateMod::Diurnal {
                    period: 200_000,
                    low_per_mille: 600,
                    high_per_mille: 1_800,
                }]
            },
            users: KeyDist::HotSet { n: 50_000, hot: 64, hot_per_mille: 800 },
            total_ops: 20_000,
            ckpt_interval: 0,
            protocols: ALL,
            batches: &[8],
            build: |_| Scenario::none(),
        },
        Spec {
            name: "flash_zipf",
            generator: "bursty(16 @ gap 2, quiet 1200) * 3x crowd / zipf 30k users",
            arrival: Arrival::Bursty { burst: 16, gap_in: 2, mean_gap_between: 1_200 },
            mods: || {
                vec![RateMod::FlashCrowd {
                    window: Window::new(100_000, 200_000),
                    mult_per_mille: 3_000,
                }]
            },
            users: KeyDist::Zipf { n: 30_000, theta_per_mille: 900 },
            total_ops: 20_000,
            ckpt_interval: 0,
            protocols: ALL,
            batches: &[8],
            build: |_| Scenario::none(),
        },
        Spec {
            name: "production_scale",
            generator: "poisson(gap 40) * diurnal 0.7-1.4x / hotset 262k users",
            arrival: Arrival::Poisson { mean_gap: 40 },
            mods: production_mods,
            users: PRODUCTION_USERS,
            total_ops: 1_000_000,
            ckpt_interval: 0,
            protocols: &["pbft", "passive"],
            batches: &[8],
            build: |_| Scenario::none(),
        },
        Spec {
            name: "minbft_ring_aging",
            generator: "poisson(gap 40) * diurnal 0.7-1.4x / hotset 262k users + backup crash",
            arrival: Arrival::Poisson { mean_gap: 40 },
            mods: production_mods,
            users: PRODUCTION_USERS,
            total_ops: 1_000_000,
            // Certified checkpoints every 2048 slots: the healed backup's
            // only way past the retired resend rings is a checkpoint hint.
            ckpt_interval: 2_048,
            protocols: &["minbft"],
            batches: &[8],
            // A ~300k-cycle outage ≈ 940 slots ≈ 1900 UI-stamped sends per
            // peer — far past the 512-counter resend ring, so ordinary
            // FillGap replay is structurally impossible when it heals.
            build: |n| {
                Scenario::none().script(
                    n - 1,
                    ReplicaScript::correct()
                        .crash(rsoc_bft::adversary::Window::new(100_000, 400_000)),
                )
            },
        },
    ]
}

fn production_mods() -> Vec<RateMod> {
    vec![RateMod::Diurnal { period: 2_000_000, low_per_mille: 700, high_per_mille: 1_400 }]
}

#[derive(Serialize, Clone)]
struct Row {
    /// Canonical index in the unfiltered grid (the shard-stitch key).
    cell_index: usize,
    generator: &'static str,
    arrival: &'static str,
    protocol: &'static str,
    batch_size: usize,
    total_ops: u64,
    issued: u64,
    committed: u64,
    distinct_users: u64,
    retries: u64,
    messages_total: u64,
    messages_protocol: u64,
    duration_cycles: u64,
    ops_per_kcycle: f64,
    p50_cycles: u64,
    p99_cycles: u64,
    p999_cycles: u64,
    max_latency_cycles: u64,
    /// Sparse log-bucketed latency histogram: occupied bucket indices…
    hist_bucket_indices: Vec<u64>,
    /// …and their counts. Summing these MUST reproduce `committed` — the
    /// self-check `check_regression` enforces on every record.
    hist_bucket_counts: Vec<u64>,
    stable_seq: u64,
    state_transfers: u64,
    hint_resyncs: u64,
    safety_ok: bool,
    pass: bool,
}

struct Options {
    json: bool,
    quick: bool,
    jobs: usize,
    shard: Option<(usize, usize)>,
    /// `--stitch OUT IN...`: re-assemble shard files instead of running.
    stitch: Option<Vec<String>>,
}

fn parse_args() -> Options {
    let mut o =
        Options { json: false, quick: false, jobs: default_jobs(), shard: None, stitch: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => o.json = true,
            "--quick" => o.quick = true,
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                o.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a positive integer, got {v:?}");
                    std::process::exit(2);
                });
                o.jobs = o.jobs.max(1);
            }
            "--shard" => {
                let v = args.next().unwrap_or_default();
                o.shard = Some(rsoc_bench::parse_shard(&v).unwrap_or_else(|| {
                    eprintln!("--shard needs i/N with 0 <= i < N, got {v:?}");
                    std::process::exit(2);
                }));
            }
            "--stitch" => {
                let rest: Vec<String> = args.by_ref().collect();
                if rest.len() < 2 {
                    eprintln!("--stitch needs OUT plus at least one shard file");
                    std::process::exit(2);
                }
                o.stitch = Some(rest);
            }
            other => eprintln!("ignoring unknown argument: {other}"),
        }
    }
    o
}

/// Runs one cell: builds the cluster, drives the open-loop plane, and
/// aggregates the checkpoint counters across replicas.
fn run_cell(
    cell_index: usize,
    spec: &Spec,
    protocol: &'static str,
    batch: usize,
    seed: u64,
    total_ops: u64,
) -> Row {
    let cfg = RunConfig::builder()
        .f(1)
        .seed(seed)
        .latency(LatencyModel::Uniform { min: 5, max: 15 })
        .max_cycles(MAX_CYCLES)
        .batch_size(batch)
        .batch_flush(80)
        .checkpoint_interval(spec.ckpt_interval)
        .build();
    let ospec =
        OpenLoopSpec { arrival: spec.arrival, mods: (spec.mods)(), users: spec.users, total_ops };
    let (report, ckpt) = match protocol {
        "pbft" => {
            let mut c = PbftCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32);
            let r = run_open_loop(&mut c, &cfg, &ospec, &scenario);
            (r, ckpt_stats(&c))
        }
        "minbft" => {
            let mut c = MinBftCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32);
            let r = run_open_loop(&mut c, &cfg, &ospec, &scenario);
            (r, ckpt_stats(&c))
        }
        _ => {
            let mut c = PassiveCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32);
            let r = run_open_loop(&mut c, &cfg, &ospec, &scenario);
            (r, ckpt_stats(&c))
        }
    };
    row_from(cell_index, spec, protocol, batch, total_ops, &report, ckpt)
}

/// (max stable watermark, transfers installed, checkpoint-hint resyncs).
fn ckpt_stats<C: Cluster>(cluster: &C) -> (u64, u64, u64) {
    let mut stable = 0u64;
    let mut transfers = 0u64;
    let mut resyncs = 0u64;
    for node in cluster.nodes() {
        let s = node.checkpoint_stats();
        stable = stable.max(s.stable_seq);
        transfers += s.transfers;
        resyncs += s.hint_resyncs;
    }
    (stable, transfers, resyncs)
}

fn row_from(
    cell_index: usize,
    spec: &Spec,
    protocol: &'static str,
    batch: usize,
    total_ops: u64,
    r: &OpenLoopReport,
    (stable_seq, state_transfers, hint_resyncs): (u64, u64, u64),
) -> Row {
    let (hist_bucket_indices, hist_bucket_counts) = r.latency.to_sparse();
    let q = |q: f64| r.latency.quantile(q).unwrap_or(0);
    let pass = r.committed == r.issued
        && r.issued == total_ops
        && r.safety_ok
        && r.latency.count() == r.committed;
    Row {
        cell_index,
        generator: spec.name,
        arrival: spec.generator,
        protocol,
        batch_size: batch,
        total_ops,
        issued: r.issued,
        committed: r.committed,
        distinct_users: r.distinct_users,
        retries: r.retries,
        messages_total: r.messages_total,
        messages_protocol: r.messages_protocol,
        duration_cycles: r.duration_cycles,
        ops_per_kcycle: if r.duration_cycles == 0 {
            0.0
        } else {
            r.committed as f64 * 1000.0 / r.duration_cycles as f64
        },
        p50_cycles: q(0.5),
        p99_cycles: q(0.99),
        p999_cycles: q(0.999),
        max_latency_cycles: r.latency.max().unwrap_or(0),
        hist_bucket_indices,
        hist_bucket_counts,
        stable_seq,
        state_transfers,
        hint_resyncs,
        safety_ok: r.safety_ok,
        pass,
    }
}

/// Assembles the final record from pre-serialized row texts. The whole
/// run and the stitcher both funnel through here, which is what makes a
/// stitched document byte-identical to the unsharded one.
fn assemble(quick: bool, grid_cells: usize, row_jsons: &[String]) -> String {
    format!(
        "{{\"experiment\":\"f8_openloop\",\"schema_version\":1,\"quick\":{quick},\
         \"grid_cells\":{grid_cells},\"rows\":[{}]}}",
        row_jsons.join(",")
    )
}

/// Self-validates an assembled record (whole-run or stitched): every row
/// passed, every histogram sums to its committed count, the ring-aging
/// cell actually escalated through the hint path, and (full runs only)
/// the population and million-op floors hold.
fn validate(doc: &Value) {
    let quick = doc["quick"].as_bool().expect("quick flag");
    let grid = doc["grid_cells"].as_u64().expect("grid_cells") as usize;
    let rows = doc["rows"].as_array().expect("rows array");
    assert_eq!(rows.len(), grid, "record must cover the whole grid");
    let mut max_users = 0u64;
    let mut aging_resyncs = 0u64;
    let mut million: Vec<&str> = Vec::new();
    for row in rows {
        let ctx = || {
            format!(
                "{}/{}",
                row["generator"].as_str().unwrap_or("?"),
                row["protocol"].as_str().unwrap_or("?")
            )
        };
        assert_eq!(row["pass"].as_bool(), Some(true), "failed cell recorded: {}", ctx());
        assert_eq!(row["safety_ok"].as_bool(), Some(true), "unsafe cell recorded: {}", ctx());
        let committed = row["committed"].as_u64().expect("committed");
        let counts = row["hist_bucket_counts"].as_array().expect("hist counts");
        let indices = row["hist_bucket_indices"].as_array().expect("hist indices");
        assert_eq!(indices.len(), counts.len(), "ragged histogram: {}", ctx());
        let sum: u64 = counts.iter().filter_map(Value::as_u64).sum();
        assert_eq!(sum, committed, "histogram does not account for every commit: {}", ctx());
        max_users = max_users.max(row["distinct_users"].as_u64().unwrap_or(0));
        if row["generator"].as_str() == Some("minbft_ring_aging") {
            aging_resyncs += row["hint_resyncs"].as_u64().unwrap_or(0);
        }
        if row["total_ops"].as_u64().unwrap_or(0) >= 1_000_000 {
            million.push(row["protocol"].as_str().unwrap_or("?"));
        }
    }
    assert!(
        aging_resyncs >= 1,
        "the ring-aging cell never escalated through the checkpoint-hint path"
    );
    if !quick {
        assert!(
            max_users >= 100_000,
            "population floor: best cell reached only {max_users} distinct users"
        );
        for p in ["pbft", "minbft", "passive"] {
            assert!(million.contains(&p), "no million-op cell recorded for {p}");
        }
    }
}

/// `--stitch OUT IN...`: merges shard `.jsonl` files (header line + one
/// row line each) into the full record, byte-identical to an unsharded
/// run's `BENCH_8.json`.
fn stitch(paths: &[String]) {
    let out_path = &paths[0];
    let mut head: Option<(bool, usize)> = None;
    let mut rows: Vec<(usize, String)> = Vec::new();
    for path in &paths[1..] {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read shard {path}: {e}"));
        let mut lines = text.lines();
        let h: Value = serde_json::from_str(lines.next().unwrap_or_default())
            .unwrap_or_else(|e| panic!("parse shard header {path}: {e:?}"));
        let this = (
            h["quick"].as_bool().expect("shard header quick"),
            h["grid_cells"].as_u64().expect("shard header grid_cells") as usize,
        );
        match head {
            None => head = Some(this),
            Some(prev) => assert_eq!(prev, this, "{path}: shard headers disagree"),
        }
        for line in lines {
            let v: Value = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("parse shard row in {path}: {e:?}"));
            let i = v["cell_index"].as_u64().expect("row cell_index") as usize;
            // Keep the ORIGINAL text: re-serializing a parsed Value would
            // reorder keys and break byte-identity with the whole run.
            rows.push((i, line.to_string()));
        }
    }
    let (quick, grid) = head.expect("at least one shard file");
    rows.sort_by_key(|&(i, _)| i);
    let indices: Vec<usize> = rows.iter().map(|&(i, _)| i).collect();
    assert_eq!(
        indices,
        (0..grid).collect::<Vec<_>>(),
        "shards must cover every grid cell exactly once"
    );
    let row_jsons: Vec<String> = rows.into_iter().map(|(_, t)| t).collect();
    let doc = assemble(quick, grid, &row_jsons);
    validate(&serde_json::from_str(&doc).expect("stitched record malformed"));
    std::fs::write(out_path, &doc).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("stitched {} shards into {out_path} ({grid} cells, validated)", paths.len() - 1);
}

fn main() {
    let options = parse_args();
    if let Some(paths) = &options.stitch {
        stitch(paths);
        return;
    }
    let specs = specs();

    // The cell grid in canonical order: generator × protocol × batch.
    struct CellDef<'a> {
        index: usize,
        spec: &'a Spec,
        protocol: &'static str,
        batch: usize,
        seed: u64,
        total_ops: u64,
    }
    let mut cells: Vec<CellDef> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        for (pi, proto) in spec.protocols.iter().enumerate() {
            for (bi, batch) in spec.batches.iter().enumerate() {
                // Per-cell seed: a pure function of the cell's coordinates,
                // never a shared sequential stream — shards replay exactly
                // the traces the whole sweep does.
                let seed = 0xF8_0000 ^ ((si as u64) << 12) ^ ((pi as u64) << 8) ^ (bi as u64);
                let total_ops =
                    if options.quick { (spec.total_ops / 10).max(1) } else { spec.total_ops };
                cells.push(CellDef {
                    index: cells.len(),
                    spec,
                    protocol: proto,
                    batch: *batch,
                    seed,
                    total_ops,
                });
            }
        }
    }
    let grid_cells = cells.len();

    let rows: Vec<Row> = run_cells_sharded(&cells, options.jobs, options.shard, |c| {
        run_cell(c.index, c.spec, c.protocol, c.batch, c.seed, c.total_ops)
    })
    .into_iter()
    .map(|(_, r)| r)
    .collect();

    let mut table = Table::new(
        "F8 open-loop campaign: rate-scheduled arrivals, skewed populations, latency tails",
        &[
            "generator",
            "protocol",
            "batch",
            "committed",
            "users",
            "p50",
            "p99",
            "p999",
            "ops/kcyc",
            "resyncs",
            "verdict",
        ],
    );
    let mut failures = Vec::new();
    for row in &rows {
        table.row(
            &[
                row.generator.to_string(),
                row.protocol.to_string(),
                row.batch_size.to_string(),
                format!("{}/{}", row.committed, row.issued),
                row.distinct_users.to_string(),
                row.p50_cycles.to_string(),
                row.p99_cycles.to_string(),
                row.p999_cycles.to_string(),
                format!("{:.1}", row.ops_per_kcycle),
                row.hint_resyncs.to_string(),
                if row.pass { "pass".into() } else { "FAIL".into() },
            ],
            row,
        );
        if !row.pass {
            failures.push(format!(
                "{}/{}/b{}: committed {}/{} safety={} hist={}",
                row.generator,
                row.protocol,
                row.batch_size,
                row.committed,
                row.issued,
                row.safety_ok,
                row.hist_bucket_counts.iter().sum::<u64>(),
            ));
        }
    }
    let opts_for_print = rsoc_bench::ExpOptions {
        json: options.json,
        quick: options.quick,
        jobs: options.jobs,
        shard: options.shard,
    };
    table.print(&opts_for_print);
    assert!(failures.is_empty(), "open-loop failures:\n  {}", failures.join("\n  "));

    let row_jsons: Vec<String> =
        rows.iter().map(|r| serde_json::to_string(r).expect("serialize row")).collect();
    match options.shard {
        None => {
            let doc = assemble(options.quick, grid_cells, &row_jsons);
            std::fs::write("BENCH_8.json", &doc).expect("write BENCH_8.json");
            let reread = std::fs::read_to_string("BENCH_8.json").expect("re-read BENCH_8.json");
            validate(&serde_json::from_str(&reread).expect("BENCH_8.json malformed"));
            println!("\nwrote BENCH_8.json ({grid_cells} cells, self-validated)");
        }
        Some((i, n)) => {
            let path = format!("BENCH_8.shard{i}of{n}.jsonl");
            let header = format!(
                "{{\"experiment\":\"f8_openloop\",\"schema_version\":1,\"quick\":{},\
                 \"grid_cells\":{grid_cells},\"shard\":\"{i}/{n}\"}}",
                options.quick
            );
            let mut doc = header;
            for r in &row_jsons {
                doc.push('\n');
                doc.push_str(r);
            }
            std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("\nwrote {path} ({} of {grid_cells} cells)", row_jsons.len());
        }
    }
    println!(
        "\nExpected shape: every cell absorbs its full arrival schedule\n\
         (committed == issued) with the histogram accounting for every\n\
         commit. The million-op cells hold >= 10^5 distinct users in one\n\
         process; the MinBFT ring-aging cell re-joins through the\n\
         checkpoint-hint path (resyncs >= 1), which only a long-run\n\
         open-loop plane can exercise."
    );
}
