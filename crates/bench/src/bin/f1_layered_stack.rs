//! F1 — The layered-resilience stack of Fig. 1, end to end.
//!
//! The paper's only figure shows resilience forms composing vertically:
//! gate-level redundancy → protected hybrids → replicated tiles over the
//! NoC → diversity/rejuvenation/adaptation → voted reconfiguration. This
//! harness runs the integrated [`rsoc_soc::SocManager`] through a 12-epoch
//! campaign (quiet → escalating compromise + SEUs → quiet) and ablates one
//! layer at a time.

use rsoc_bench::{f3, ExpOptions, Table};
use rsoc_soc::{EpochThreat, ManagerConfig, SocConfig, SocManager, TileId};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    configuration: String,
    epochs_safe: u32,
    epochs_total: u32,
    committed: u64,
    mean_replicas: f64,
    rejuvenations: usize,
}

fn campaign() -> Vec<EpochThreat> {
    let mut epochs = Vec::new();
    // 3 quiet epochs.
    for _ in 0..3 {
        epochs.push(EpochThreat::default());
    }
    // Escalation: one compromised tile, then two, plus SEU weather.
    epochs.push(EpochThreat { compromise: vec![TileId(3)], seu_events: 2, ..Default::default() });
    epochs.push(EpochThreat { compromise: vec![TileId(7)], seu_events: 3, ..Default::default() });
    epochs.push(EpochThreat {
        compromise: vec![TileId(9), TileId(11)],
        seu_events: 3,
        ..Default::default()
    });
    // One benign crash during the storm.
    epochs.push(EpochThreat { crash: vec![TileId(14)], seu_events: 1, ..Default::default() });
    // Cool-down.
    for _ in 0..5 {
        epochs.push(EpochThreat::default());
    }
    epochs
}

fn run_config(name: &str, config: ManagerConfig) -> Row {
    let mut mgr = SocManager::new(SocConfig { mesh_width: 4, mesh_height: 4, seed: 0xF1 }, config);
    let mut safe = 0u32;
    let mut committed = 0u64;
    let mut replica_sum = 0.0;
    let mut rejuvenations = 0usize;
    let epochs = campaign();
    for threat in &epochs {
        let report = mgr.run_epoch(threat, 1, 5);
        if report.run.safety_ok && report.run.committed == 5 {
            safe += 1;
        }
        committed += report.run.committed;
        replica_sum += report.run.n_replicas as f64;
        rejuvenations += report.rejuvenated.len();
    }
    Row {
        configuration: name.to_string(),
        epochs_safe: safe,
        epochs_total: epochs.len() as u32,
        committed,
        mean_replicas: replica_sum / epochs.len() as f64,
        rejuvenations,
    }
}

fn main() {
    let options = ExpOptions::from_args();
    let mut table = Table::new(
        "F1 12-epoch campaign on a 4x4 SoC: full stack vs ablations",
        &["configuration", "safe_epochs", "committed", "mean_replicas", "rejuvenations"],
    );
    let configs: Vec<(&str, ManagerConfig)> = vec![
        ("full stack", ManagerConfig::default()),
        (
            "no adaptation (static minbft f=1)",
            ManagerConfig { enable_adaptation: false, ..Default::default() },
        ),
        ("no rejuvenation", ManagerConfig { enable_rejuvenation: false, ..Default::default() }),
        (
            "no diversity (same-variant restarts)",
            ManagerConfig { enable_diversity: false, ..Default::default() },
        ),
        ("no relocation", ManagerConfig { enable_relocation: false, ..Default::default() }),
    ];
    // Each configuration's campaign is an independent, seeded cell.
    let rows =
        rsoc_bench::run_cells(&configs, options.jobs, |(name, config)| run_config(name, *config));
    for row in rows {
        table.row(
            &[
                row.configuration.clone(),
                format!("{}/{}", row.epochs_safe, row.epochs_total),
                row.committed.to_string(),
                f3(row.mean_replicas),
                row.rejuvenations.to_string(),
            ],
            &row,
        );
    }
    table.print(&options);
    println!(
        "\nExpected shape (Fig. 1): the full stack stays safe through the\n\
         storm while averaging a small replica footprint (adaptation shrinks\n\
         it in quiet epochs). Removing rejuvenation lets compromised tiles\n\
         accumulate across epochs; removing adaptation either over- or\n\
         under-provisions; diversity/relocation ablations keep this short\n\
         campaign safe but forfeit the APT-horizon protections E6/E9\n\
         quantify."
    );
}
