//! E7 — Threat-adaptive deployment (§II-D).
//!
//! Claim: adapting f and the protocol to the current threat gets the
//! protection of the big static configuration at close to the cost of the
//! small one; the price is detector dependence and switch windows.
//!
//! Scenario: a day-in-the-life threat trace (long quiet, escalating attack,
//! quiet). The detector lags ground truth by one segment to model
//! detection latency. Policies: static-small, static-large, adaptive.

use rsoc_adapt::controller::TraceSegment;
use rsoc_adapt::{
    simulate_adaptation, AdaptPolicy, AdaptiveController, Deployment, ProtocolChoice, ThreatLevel,
};
use rsoc_bench::{f3, ExpOptions, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    underprotected_frac: f64,
    mean_replicas: f64,
    switches: u32,
}

fn trace() -> Vec<TraceSegment> {
    // (duration, ground-truth byz f, detected level) — detection lags one
    // segment behind ground truth.
    vec![
        TraceSegment { duration: 100_000, byz_faults: 0, detected: ThreatLevel::Low },
        TraceSegment { duration: 5_000, byz_faults: 1, detected: ThreatLevel::Low }, // lag
        TraceSegment { duration: 15_000, byz_faults: 1, detected: ThreatLevel::High },
        TraceSegment { duration: 10_000, byz_faults: 2, detected: ThreatLevel::High },
        TraceSegment { duration: 10_000, byz_faults: 3, detected: ThreatLevel::Critical },
        TraceSegment { duration: 15_000, byz_faults: 1, detected: ThreatLevel::Critical }, // lag down
        TraceSegment { duration: 100_000, byz_faults: 0, detected: ThreatLevel::Low },
    ]
}

fn main() {
    let options = ExpOptions::from_args();
    let trace = trace();

    let mut table = Table::new(
        "E7 static vs adaptive deployments over a threat trace",
        &["policy", "underprot_frac", "mean_replicas", "switches"],
    );
    // Policies are built inside each cell (the controller holds state),
    // so cells stay independent and fan out across threads.
    let policy_for = |name: &str| -> AdaptPolicy {
        match name {
            "static minbft f=1" => {
                AdaptPolicy::Static(Deployment { protocol: ProtocolChoice::MinBft, f: 1 })
            }
            "static pbft f=3" => {
                AdaptPolicy::Static(Deployment { protocol: ProtocolChoice::Pbft, f: 3 })
            }
            _ => AdaptPolicy::Adaptive(AdaptiveController::default()),
        }
    };
    let cells: Vec<&'static str> = vec!["static minbft f=1", "static pbft f=3", "adaptive"];
    let results = rsoc_bench::run_cells(&cells, options.jobs, |name| {
        simulate_adaptation(&trace, policy_for(name))
    });
    for (name, r) in cells.iter().zip(&results) {
        let name = name.to_string();
        table.row(
            &[
                name.clone(),
                f3(r.underprotected_fraction()),
                f3(r.mean_replicas()),
                r.switches.to_string(),
            ],
            &Row {
                policy: name,
                underprotected_frac: r.underprotected_fraction(),
                mean_replicas: r.mean_replicas(),
                switches: r.switches,
            },
        );
    }
    table.print(&options);

    // --- Part 2: detector in the loop (no oracle labels). ----------------
    use rsoc_adapt::{run_closed_loop, DetectorConfig, GroundTruthWindow, ObservationModel};
    use rsoc_sim::SimRng;
    #[derive(Serialize)]
    struct LoopRow {
        noise: &'static str,
        masked: u32,
        missed: u32,
        false_alarm_windows: u32,
        mean_replicas: f64,
    }
    let mut truth = Vec::new();
    for _ in 0..60 {
        truth.push(GroundTruthWindow { duration: 1_000, byz_faults: 0 });
    }
    for _ in 0..12 {
        truth.push(GroundTruthWindow { duration: 1_000, byz_faults: 1 });
    }
    for _ in 0..8 {
        truth.push(GroundTruthWindow { duration: 1_000, byz_faults: 2 });
    }
    for _ in 0..60 {
        truth.push(GroundTruthWindow { duration: 1_000, byz_faults: 0 });
    }
    let mut loop_table = Table::new(
        "E7b closed loop (detector observes noisy signals, no oracle)",
        &["noise", "attacks_masked", "attacks_missed", "false_alarms", "mean_replicas"],
    );
    let loop_cells: Vec<(&'static str, ObservationModel)> = vec![
        ("nominal", ObservationModel::default()),
        (
            "noisy-bg",
            ObservationModel {
                background_timeouts: 2.0,
                background_seu: 1.0,
                ..Default::default()
            },
        ),
        (
            "weak-signal",
            ObservationModel {
                equivocations_per_fault: 0.5,
                mac_failures_per_fault: 0.8,
                ..Default::default()
            },
        ),
    ];
    let loop_results = rsoc_bench::run_cells(&loop_cells, options.jobs, |(_, model)| {
        // Each cell owns its RNG (fixed seed): cells are independent.
        let mut rng = SimRng::new(0xE7B);
        run_closed_loop(
            &truth,
            DetectorConfig::default(),
            AdaptiveController::default(),
            *model,
            &mut rng,
        )
    });
    for ((name, _), r) in loop_cells.iter().zip(&loop_results) {
        loop_table.row(
            &[
                name.to_string(),
                r.attacks_masked.to_string(),
                r.attacks_missed.to_string(),
                r.false_alarm_windows.to_string(),
                f3(r.ledger.mean_replicas()),
            ],
            &LoopRow {
                noise: name,
                masked: r.attacks_masked,
                missed: r.attacks_missed,
                false_alarm_windows: r.false_alarm_windows,
                mean_replicas: r.ledger.mean_replicas(),
            },
        );
    }
    loop_table.print(&options);

    println!(
        "\nExpected shape (paper §II-D): static-small is cheap but spends the\n\
         whole attack under-protected; static-large is protected but burns\n\
         10 replicas through the long quiet phases; adaptive tracks the\n\
         threat — under-protection limited to detection lag plus switch\n\
         windows, at a mean footprint close to the small configuration."
    );
}
