//! E1 — Gate-level redundancy (§I, Fig. 1 bottom layer).
//!
//! Claim: replicated/backup gates mask faults at an area cost; redundancy
//! stops paying once the extra gates (and the voter) collect more faults
//! than they mask.
//!
//! Sweep: per-gate fault probability × {simplex, TMR, 5-MR}. Two voter
//! models are reported: the classic Lyons–Vanderkulk *protected voter*
//! (hardened or negligible relative to the module) and an honest
//! *gate-built voter* that fails like everything else. An 8-bit ripple
//! adder is the module under protection.

use rsoc_bench::{f3, ExpOptions, Table};
use rsoc_hw::circuits::ripple_carry_adder;
use rsoc_hw::redundancy::{nmr, nmr_overhead};
use rsoc_hw::reliability::{estimate_nmr_ideal_voter, estimate_reliability};
use rsoc_hw::FaultSampler;
use rsoc_sim::SimRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    p_fault: f64,
    simplex: f64,
    tmr_protected: f64,
    fivemr_protected: f64,
    tmr_gate_voter: f64,
    tmr_area_factor: f64,
}

fn main() {
    let options = ExpOptions::from_args();
    let trials = options.trials(30_000);
    let root = SimRng::new(0xE1);
    let module = ripple_carry_adder(8);
    let tmr_gate = nmr(&module, 3);

    let mut table = Table::new(
        "E1 rca8: correct-output probability vs per-gate fault rate",
        &["p_fault", "simplex", "tmr", "5mr", "tmr(gate-voter)", "tmr_area"],
    );
    // One cell per fault-rate point; the per-cell RNG streams fork from
    // the root by cell index, so the sweep fans out across threads.
    let cells: Vec<(usize, f64)> =
        [1e-4f64, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1].iter().copied().enumerate().collect();
    let estimates = rsoc_bench::run_cells(&cells, options.jobs, |&(i, p)| {
        let sampler = FaultSampler::new(p);
        let mut r1 = root.fork(i as u64 * 10 + 1);
        let mut r2 = root.fork(i as u64 * 10 + 2);
        let mut r3 = root.fork(i as u64 * 10 + 3);
        let mut r4 = root.fork(i as u64 * 10 + 4);
        (
            estimate_reliability(&module, &sampler, trials, &mut r1),
            estimate_nmr_ideal_voter(&module, 3, &sampler, trials, &mut r2),
            estimate_nmr_ideal_voter(&module, 5, &sampler, trials, &mut r3),
            estimate_reliability(&tmr_gate, &sampler, trials, &mut r4),
        )
    });
    for (&(_, p), (simplex, tmr, fivemr, tmr_gv)) in cells.iter().zip(&estimates) {
        let p = &p;
        table.row(
            &[
                format!("{p:.0e}"),
                f3(simplex.correct_fraction),
                f3(tmr.correct_fraction),
                f3(fivemr.correct_fraction),
                f3(tmr_gv.correct_fraction),
                f3(nmr_overhead(&module, 3)),
            ],
            &Row {
                p_fault: *p,
                simplex: simplex.correct_fraction,
                tmr_protected: tmr.correct_fraction,
                fivemr_protected: fivemr.correct_fraction,
                tmr_gate_voter: tmr_gv.correct_fraction,
                tmr_area_factor: nmr_overhead(&module, 3),
            },
        );
    }
    table.print(&options);

    // --- Part 2: replicated vs diverse gates under design flaws (§I:
    // "replicated parallel gates, or diverse gates"). ---------------------
    use rsoc_hw::diverse::{
        flaw_in_diverse_nmr, flaw_in_identical_nmr, nmr_diverse, ripple_carry_adder_nand,
        ripple_carry_adder_nor, DesignFlaw,
    };
    #[derive(Serialize)]
    struct FlawRow {
        arrangement: &'static str,
        failure_rate: f64,
    }
    let base = ripple_carry_adder(4);
    let nand = ripple_carry_adder_nand(4);
    let nor = ripple_carry_adder_nor(4);
    let identical = nmr(&base, 3);
    let impls = [&base, &nand, &nor];
    let diverse = nmr_diverse(&impls);
    let flaw_trials = options.trials(10_000);
    let mut rng = root.fork(999);
    let mut fail = [0u64; 3]; // simplex, identical tmr, diverse tmr
    for _ in 0..flaw_trials {
        let flaw = DesignFlaw::sample(base.logic_gate_count(), &mut rng);
        let inputs: Vec<bool> = (0..base.input_count()).map(|_| rng.chance(0.5)).collect();
        let golden = base.eval(&inputs);
        let mut one = rsoc_hw::FaultMap::new();
        one.insert(
            rsoc_hw::GateId::new((base.input_count() + flaw.logic_gate_index) as u32),
            flaw.kind,
        );
        if base.eval_with_faults(&inputs, &one) != golden {
            fail[0] += 1;
        }
        if identical.eval_with_faults(&inputs, &flaw_in_identical_nmr(&base, 3, flaw)) != golden {
            fail[1] += 1;
        }
        if diverse.eval_with_faults(&inputs, &flaw_in_diverse_nmr(&impls, 0, flaw)) != golden {
            fail[2] += 1;
        }
    }
    let mut flaw_table = Table::new(
        "E1b rca4 with one random design flaw: output error rate",
        &["arrangement", "failure_rate"],
    );
    for (i, name) in ["simplex", "identical TMR", "diverse TMR"].iter().enumerate() {
        let rate = fail[i] as f64 / flaw_trials as f64;
        flaw_table.row(
            &[name.to_string(), f3(rate)],
            &FlawRow {
                arrangement: match i {
                    0 => "simplex",
                    1 => "identical-tmr",
                    _ => "diverse-tmr",
                },
                failure_rate: rate,
            },
        );
    }
    flaw_table.print(&options);

    println!(
        "\nExpected shape (paper §I): with a protected voter, TMR/5-MR cut the\n\
         failure probability by orders of magnitude at low fault rates and\n\
         invert past the crossover (~p where a copy is likely faulty). The\n\
         gate-built-voter column shows the engineering caveat: on a module\n\
         this small the unprotected voter eats most of the redundancy win —\n\
         the paper's point that resiliency must be designed at the *right*\n\
         level, not sprinkled on. E1b: identical redundancy replicates a\n\
         design flaw into every copy (failure ≈ simplex), while diverse\n\
         implementations confine it to one voted-out copy (failure = 0)."
    );
}
