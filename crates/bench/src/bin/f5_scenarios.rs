//! F5 — the adversarial scenario campaign: a named matrix of composable,
//! time-phased fault and intrusion scripts swept over every protocol and
//! batch size, each cell judged by the safety/liveness oracle.
//!
//! The paper's core claim is resilience to *both* accidental faults and
//! targeted intrusions; after four perf-focused PRs the evidence was six
//! hard-coded behaviours poked ad hoc in unit tests. This campaign runs
//! **16 named scenarios** — crash/recover windows, silence, Byzantine
//! content attacks, partitions (blip and healed-minority), DoS-rate
//! client floods, probabilistic drop storms, degraded (slow) links,
//! duplication, reordering, stale replay, and cascading primary crashes —
//! against {pbft, minbft, passive} × batch {1, 8}, deterministically
//! under the parallel sweep runner. Every cell must pass the
//! [`ScenarioOracle`]: safety (and cross-replica digest agreement)
//! unconditionally, liveness because every scripted fault either heals or
//! stays within the protocol's tolerance.
//!
//! Building this campaign (and composing its scenarios) caught five real
//! protocol bugs the ad-hoc tests missed, all fixed and pinned by
//! regression tests: a view-change *wedge* (a `CrashAt` firing mid
//! view-change left the cluster re-demanding a view whose primary was
//! dead), a sequence-hole wedge under message loss (a proposal dying
//! unprepared below a prepared neighbour blocked in-order execution
//! forever — fixed with quorum-floor-guarded no-op fillers, PBFT's null
//! requests), MinBFT counter-stream poisoning (one dropped UI-certified
//! message stalled the sender's hold-back stream forever — fixed with
//! `FillGap` reliable-FIFO-channel emulation), timer-chain death across
//! crash windows (revived on the first post-outage input), and stale-log
//! promotion in passive failover (heartbeat-advertised log lengths plus
//! backup resync shrink the stale window to ~one heartbeat period; the
//! residual is passive's inherent non-seamless recovery). See the
//! README's "Scenario matrix".
//!
//! Writes **`BENCH_5.json`** (self-validated by re-reading). The whole
//! record is virtual-time only, hence byte-identical for any `--jobs N`
//! (checked in CI) and machine-independent. `--quick` sweeps the same
//! matrix (the cells are already small); `--scenario NAME` filters to one
//! scenario (CI uses it for per-scenario log groups) and `--list` prints
//! the scenario names.
//!
//! [`ScenarioOracle`]: rsoc_bft::adversary::ScenarioOracle

use rsoc_bench::{default_jobs, run_cells, Table};
use rsoc_bft::adversary::{
    Flood, LinkFault, ReplaySpec, ReplicaScript, Scenario, ScenarioOracle, Window,
};
use rsoc_bft::api::Cluster;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run_scenario, LatencyModel, RunConfig, ScenarioOutcome};
use serde::Serialize;

/// Workload clients per cell.
const CLIENTS: u32 = 4;
/// Requests per client per cell.
const REQUESTS: u64 = 8;
/// Batch sizes swept per scenario × protocol.
const BATCHES: [usize; 2] = [1, 8];
/// Hard stop per cell (a wedged cell shows up as a liveness failure, not
/// a hang).
const MAX_CYCLES: u64 = 20_000_000;

/// One named scenario of the campaign matrix.
struct Spec {
    name: &'static str,
    /// What the scenario attacks (for the table and README matrix).
    attacks: &'static str,
    /// Protocols the scenario applies to (content attacks and
    /// quorum-dependent partitions exclude the 2-replica passive pair,
    /// which tolerates neither by design).
    protocols: &'static [&'static str],
    /// Fault threshold of the cell (2 for the cascading double crash).
    f: u32,
    /// Builds the scenario for a cluster of `n` replicas.
    build: fn(n: u32) -> Scenario,
}

const ALL: &[&str] = &["pbft", "minbft", "passive"];
const BFT: &[&str] = &["pbft", "minbft"];

fn specs() -> Vec<Spec> {
    vec![
        Spec {
            name: "baseline",
            attacks: "nothing (control row)",
            protocols: ALL,
            f: 1,
            build: |_| Scenario::none(),
        },
        Spec {
            name: "crash_backup",
            attacks: "fail-stop of one backup",
            protocols: ALL,
            f: 1,
            build: |n| {
                Scenario::none().script(n - 1, ReplicaScript::correct().crash(Window::from(500)))
            },
        },
        Spec {
            name: "crash_primary",
            attacks: "fail-stop of the initial primary",
            protocols: ALL,
            f: 1,
            build: |_| {
                Scenario::none().script(0, ReplicaScript::correct().crash(Window::from(150)))
            },
        },
        Spec {
            name: "crash_recover_backup",
            attacks: "transient backup outage (fail-recover)",
            protocols: ALL,
            f: 1,
            build: |n| {
                Scenario::none()
                    .script(n - 1, ReplicaScript::correct().crash(Window::new(500, 2_600)))
            },
        },
        Spec {
            name: "crash_recover_primary",
            attacks: "transient primary outage; deposed, then rejoins",
            protocols: BFT,
            f: 1,
            build: |_| {
                Scenario::none().script(0, ReplicaScript::correct().crash(Window::new(150, 2_600)))
            },
        },
        Spec {
            name: "silent_backup",
            attacks: "omission window (receives, never sends)",
            protocols: ALL,
            f: 1,
            build: |n| {
                Scenario::none()
                    .script(n - 1, ReplicaScript::correct().silence(Window::new(200, 2_600)))
            },
        },
        Spec {
            name: "byzantine_primary",
            attacks: "equivocation + forged UI certificates",
            protocols: BFT,
            f: 1,
            build: |_| {
                Scenario::none().script(
                    0,
                    ReplicaScript::correct()
                        .equivocate(Window::new(0, 3_000))
                        .forge_ui(Window::new(0, 3_000)),
                )
            },
        },
        Spec {
            name: "partition_blip",
            attacks: "short NoC partition (below detector timeouts)",
            protocols: ALL,
            f: 1,
            build: |n| Scenario::none().partition(vec![n - 1], Window::new(400, 900)),
        },
        Spec {
            name: "partition_minority",
            attacks: "minority replica severed for a long window, then healed",
            protocols: BFT,
            f: 1,
            build: |n| Scenario::none().partition(vec![n - 1], Window::new(400, 3_400)),
        },
        Spec {
            name: "dos_flood",
            attacks: "attacker client floods well-formed requests",
            protocols: ALL,
            f: 1,
            build: |_| {
                Scenario::none().flood(Flood {
                    window: Window::new(300, 2_700),
                    period: 40,
                    payload_size: 16,
                })
            },
        },
        Spec {
            name: "drop_storm",
            attacks: "25% loss on every replica link for a window",
            protocols: BFT,
            f: 1,
            build: |_| {
                Scenario::none().link_fault(LinkFault {
                    source: None,
                    dest: None,
                    window: Window::new(200, 2_200),
                    drop_rate: 0.25,
                    extra_delay: 0,
                })
            },
        },
        Spec {
            name: "slow_primary_egress",
            attacks: "aging/degraded egress link on the primary",
            protocols: ALL,
            f: 1,
            build: |_| {
                Scenario::none().link_fault(LinkFault {
                    source: Some(0),
                    dest: None,
                    window: Window::new(300, 2_300),
                    drop_rate: 0.0,
                    extra_delay: 250,
                })
            },
        },
        Spec {
            name: "duplicate_deluge",
            attacks: "every send delivered twice (exactly-once stress)",
            protocols: ALL,
            f: 1,
            build: |n| {
                let mut s = Scenario::none();
                for r in 0..n {
                    s = s.script(
                        r,
                        ReplicaScript::correct().duplicate_sends(Window::new(200, 2_200)),
                    );
                }
                s
            },
        },
        Spec {
            name: "reorder_wavefront",
            attacks: "outbox bursts reversed (hold-back/ordering stress)",
            protocols: ALL,
            f: 1,
            build: |n| {
                let mut s = Scenario::none();
                for r in 0..n {
                    s = s
                        .script(r, ReplicaScript::correct().reorder_sends(Window::new(200, 2_200)));
                }
                s
            },
        },
        Spec {
            name: "stale_replay",
            attacks: "network replays the primary's old protocol messages",
            protocols: ALL,
            f: 1,
            build: |_| {
                Scenario::none().script(
                    0,
                    ReplicaScript::correct().replay_sends(ReplaySpec {
                        window: Window::new(250, 2_500),
                        period: 75,
                        burst: 4,
                    }),
                )
            },
        },
        Spec {
            name: "cascading_primary_crash",
            attacks: "CrashAt firing mid view-change (double failover)",
            protocols: BFT,
            f: 2,
            build: |_| {
                Scenario::none()
                    .script(0, ReplicaScript::correct().crash(Window::from(40)))
                    .script(1, ReplicaScript::correct().crash(Window::from(1_525)))
            },
        },
    ]
}

#[derive(Serialize, Clone)]
struct Row {
    scenario: &'static str,
    attacks: &'static str,
    protocol: &'static str,
    batch_size: usize,
    committed: u64,
    expected_ops: u64,
    duration_cycles: u64,
    view_changes: u64,
    client_retries: u64,
    messages_total: u64,
    flood_requests: u64,
    script_drops: u64,
    duplicates: u64,
    replays: u64,
    safety_ok: bool,
    digests_ok: bool,
    liveness_ok: bool,
    pass: bool,
}

#[derive(Serialize)]
struct Bench5 {
    experiment: &'static str,
    schema_version: u32,
    quick: bool,
    clients: u32,
    requests_per_client: u64,
    scenarios: usize,
    rows: Vec<Row>,
}

struct Options {
    json: bool,
    quick: bool,
    jobs: usize,
    scenario: Option<String>,
    list: bool,
}

fn parse_args() -> Options {
    let mut o =
        Options { json: false, quick: false, jobs: default_jobs(), scenario: None, list: false };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => o.json = true,
            "--quick" => o.quick = true,
            "--list" => o.list = true,
            "--scenario" => o.scenario = args.next(),
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                o.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a positive integer, got {v:?}");
                    std::process::exit(2);
                });
                o.jobs = o.jobs.max(1);
            }
            other => eprintln!("ignoring unknown argument: {other}"),
        }
    }
    o
}

fn config(f: u32, batch: usize, seed: u64) -> RunConfig {
    RunConfig::builder()
        .f(f)
        .clients(CLIENTS)
        .requests_per_client(REQUESTS)
        .seed(seed)
        .latency(LatencyModel::Uniform { min: 5, max: 15 })
        .max_cycles(MAX_CYCLES)
        .batch_size(batch)
        .batch_flush(80)
        .build()
}

/// Runs one cell and judges it.
fn run_cell(spec: &Spec, protocol: &'static str, batch: usize, seed: u64) -> Row {
    let cfg = config(spec.f, batch, seed);
    let expected = CLIENTS as u64 * REQUESTS;
    let (outcome, verdict, views) = match protocol {
        "pbft" => {
            let mut c = PbftCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32);
            let out = run_scenario(&mut c, &cfg, &scenario);
            judge(&c, out, expected)
        }
        "minbft" => {
            let mut c = MinBftCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32);
            let out = run_scenario(&mut c, &cfg, &scenario);
            judge(&c, out, expected)
        }
        _ => {
            let mut c = PassiveCluster::new(&cfg);
            let scenario = (spec.build)(c.nodes().len() as u32);
            let out = run_scenario(&mut c, &cfg, &scenario);
            judge(&c, out, expected)
        }
    };
    Row {
        scenario: spec.name,
        attacks: spec.attacks,
        protocol,
        batch_size: batch,
        committed: outcome.report.committed,
        expected_ops: expected,
        duration_cycles: outcome.report.duration_cycles,
        view_changes: views,
        client_retries: outcome.report.client_retries,
        messages_total: outcome.report.messages_total,
        flood_requests: outcome.flood_requests,
        script_drops: outcome.script_drops,
        duplicates: outcome.duplicates,
        replays: outcome.replays,
        safety_ok: verdict.safety_ok,
        digests_ok: verdict.digests_ok,
        liveness_ok: verdict.liveness_ok,
        pass: verdict.pass(),
    }
}

fn judge<C: Cluster>(
    cluster: &C,
    outcome: ScenarioOutcome,
    expected: u64,
) -> (ScenarioOutcome, rsoc_bft::adversary::OracleVerdict, u64) {
    use rsoc_bft::api::ReplicaNode;
    let verdict = ScenarioOracle::expecting_liveness().judge(cluster, &outcome.report, expected);
    let views = cluster
        .correct_replicas()
        .iter()
        .map(|r| cluster.nodes()[r.0 as usize].current_view())
        .max()
        .unwrap_or(0);
    (outcome, verdict, views)
}

fn main() {
    let options = parse_args();
    let specs = specs();
    if options.list {
        for s in &specs {
            println!("{}", s.name);
        }
        return;
    }
    let selected: Vec<(usize, &Spec)> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| options.scenario.as_deref().is_none_or(|want| want == s.name))
        .collect();
    if selected.is_empty() {
        eprintln!("unknown scenario {:?}; use --list", options.scenario);
        std::process::exit(2);
    }

    // The cell grid in canonical order: scenario × protocol × batch.
    let mut cells: Vec<(&Spec, &'static str, usize, u64)> = Vec::new();
    for (si, spec) in &selected {
        for (pi, proto) in spec.protocols.iter().enumerate() {
            for (bi, batch) in BATCHES.iter().enumerate() {
                // Per-cell seed: a pure function of the cell's coordinates
                // in the UNFILTERED matrix (never a shared sequential
                // stream) — a `--scenario` run replays exactly the same
                // traces as the full matrix, so a failing BENCH_5 cell is
                // reproducible from its own CI log group.
                let seed = 0xF5_0000 ^ ((*si as u64) << 12) ^ ((pi as u64) << 8) ^ (bi as u64);
                cells.push((*spec, proto, *batch, seed));
            }
        }
    }

    let rows: Vec<Row> = run_cells(&cells, options.jobs, |(spec, proto, batch, seed)| {
        run_cell(spec, proto, *batch, *seed)
    });

    let mut table = Table::new(
        "F5 adversarial scenario campaign: safety always, liveness once faults heal",
        &[
            "scenario",
            "protocol",
            "batch",
            "committed",
            "cycles",
            "views",
            "drops",
            "floods",
            "replays",
            "verdict",
        ],
    );
    let mut failures = Vec::new();
    for row in &rows {
        table.row(
            &[
                row.scenario.to_string(),
                row.protocol.to_string(),
                row.batch_size.to_string(),
                format!("{}/{}", row.committed, row.expected_ops),
                row.duration_cycles.to_string(),
                row.view_changes.to_string(),
                row.script_drops.to_string(),
                row.flood_requests.to_string(),
                row.replays.to_string(),
                if row.pass { "pass".into() } else { "FAIL".into() },
            ],
            row,
        );
        if !row.pass {
            failures.push(format!(
                "{}/{}/b{}: safety={} digests={} liveness={} ({}/{} committed)",
                row.scenario,
                row.protocol,
                row.batch_size,
                row.safety_ok,
                row.digests_ok,
                row.liveness_ok,
                row.committed,
                row.expected_ops
            ));
        }
    }
    let opts_for_print = rsoc_bench::ExpOptions {
        json: options.json,
        quick: options.quick,
        jobs: options.jobs,
        shard: None,
    };
    table.print(&opts_for_print);
    assert!(failures.is_empty(), "oracle failures:\n  {}", failures.join("\n  "));

    // Partial (filtered) runs are for CI log groups; only the full matrix
    // writes the committed record.
    if options.scenario.is_none() {
        let bench = Bench5 {
            experiment: "f5_scenarios",
            schema_version: 1,
            quick: options.quick,
            clients: CLIENTS,
            requests_per_client: REQUESTS,
            scenarios: specs.len(),
            rows,
        };
        let json = serde_json::to_string(&bench).expect("serialize BENCH_5");
        std::fs::write("BENCH_5.json", &json).expect("write BENCH_5.json");
        let reread = std::fs::read_to_string("BENCH_5.json").expect("re-read BENCH_5.json");
        let parsed: serde_json::Value =
            serde_json::from_str(&reread).expect("BENCH_5.json malformed");
        let row_count = parsed["rows"].as_array().map(|a| a.len()).unwrap_or(0);
        assert!(row_count >= 36, "campaign shrank below the 36-cell floor: {row_count}");
        for row in parsed["rows"].as_array().expect("rows array") {
            assert_eq!(row["pass"].as_bool(), Some(true), "failed cell recorded: {row:?}");
            assert_eq!(row["safety_ok"].as_bool(), Some(true), "unsafe cell recorded: {row:?}");
        }
        println!(
            "\nwrote BENCH_5.json ({row_count} cells across {} scenarios, all oracle-passing)",
            specs.len()
        );
    }
    println!(
        "\nExpected shape: every cell passes — safety and digest agreement\n\
         unconditionally; liveness because each scripted fault heals or\n\
         stays within the protocol's tolerance. Fault-heavy cells show\n\
         view changes (detection/recovery rounds), script drops, flood\n\
         and replay volume actually absorbed."
    );
}
