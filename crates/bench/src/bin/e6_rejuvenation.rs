//! E6 — Rejuvenation policies vs an APT (§II-C).
//!
//! Claim: replication+diversity hold only while ≤ f replicas are
//! compromised; rejuvenation restores the budget, and *diverse*
//! rejuvenation "reduc\[es\] the success rate of APTs".
//!
//! Sweep: policies {none, periodic-same, periodic-diverse, reactive-diverse}
//! × rejuvenation intervals. Metrics: survival rate at horizon, mean time
//! to failure, availability, rejuvenations performed.

use rsoc_bench::{f3, ExpOptions, Table};
use rsoc_rejuv::{simulate, AptConfig, Policy};
use rsoc_sim::SimRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    interval: u64,
    survival_rate: f64,
    mttf: f64,
    availability: f64,
    rejuvenations: f64,
}

fn main() {
    let options = ExpOptions::from_args();
    let trials = options.trials(200);
    let root = SimRng::new(0xE6);
    let config = AptConfig {
        n_replicas: 4,
        f: 1,
        mean_exploit_time: 3_000.0,
        rejuvenation_downtime: 50,
        horizon: 50_000,
        ..Default::default()
    };

    let mut table = Table::new(
        "E6 APT campaigns (horizon 50k): policy vs survival",
        &["policy", "interval", "survival", "mttf", "availability", "rejuvs"],
    );
    let policies: Vec<(String, u64, Policy)> = vec![
        ("none".into(), 0, Policy::None),
        ("periodic-same".into(), 2_000, Policy::PeriodicSame { interval: 2_000 }),
        ("periodic-diverse".into(), 4_000, Policy::PeriodicDiverse { interval: 4_000 }),
        ("periodic-diverse".into(), 2_000, Policy::PeriodicDiverse { interval: 2_000 }),
        ("periodic-diverse".into(), 1_000, Policy::PeriodicDiverse { interval: 1_000 }),
        (
            "reactive-diverse".into(),
            500,
            Policy::ReactiveDiverse { check_interval: 500, detection_prob: 0.5 },
        ),
    ];
    // One cell per policy; campaign RNG streams fork from the root by
    // (policy index, trial), so cells fan out across threads.
    let indexed: Vec<(usize, (String, u64, Policy))> = policies.into_iter().enumerate().collect();
    let tallies = rsoc_bench::run_cells(&indexed, options.jobs, |(pi, (_, _, policy))| {
        let mut survived = 0u64;
        let mut ttf_sum = 0.0;
        let mut avail_sum = 0.0;
        let mut rejuv_sum = 0.0;
        for t in 0..trials {
            let mut rng = root.fork((*pi as u64) * 1_000_000 + t + 1);
            let r = simulate(&config, *policy, &mut rng);
            if r.survived {
                survived += 1;
            }
            ttf_sum += r.time_to_failure as f64;
            avail_sum += r.availability;
            rejuv_sum += r.rejuvenations as f64;
        }
        (survived, ttf_sum, avail_sum, rejuv_sum)
    });
    for ((_, (name, interval, _)), &(survived, ttf_sum, avail_sum, rejuv_sum)) in
        indexed.iter().zip(&tallies)
    {
        let n = trials as f64;
        table.row(
            &[
                name.clone(),
                if *interval == 0 { "-".into() } else { interval.to_string() },
                f3(survived as f64 / n),
                format!("{:.0}", ttf_sum / n),
                f3(avail_sum / n),
                format!("{:.1}", rejuv_sum / n),
            ],
            &Row {
                policy: name.clone(),
                interval: *interval,
                survival_rate: survived as f64 / n,
                mttf: ttf_sum / n,
                availability: avail_sum / n,
                rejuvenations: rejuv_sum / n,
            },
        );
    }
    table.print(&options);
    println!(
        "\nExpected shape (paper §II-C): no rejuvenation loses eventually;\n\
         same-variant restarts barely help (the exploit inventory re-strikes\n\
         instantly); diverse rejuvenation extends survival sharply — the\n\
         faster the cycle, the more adversary effort is wasted — at a small\n\
         availability cost; reactive rejuvenation approximates periodic-\n\
         diverse at far fewer restarts when detection is decent."
    );
}
