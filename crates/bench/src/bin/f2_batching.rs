//! F2 — Batched consensus pipeline: throughput, MAC amortization, latency.
//!
//! Claim (FeBFT / BFT-SMaRt lineage, applied to the paper's midlife
//! layer): agreeing on *batches* of requests amortizes per-agreement
//! protocol messages and per-message authentication `1/B`, buying
//! multiplicative throughput on a bandwidth-limited NoC at a bounded
//! latency cost.
//!
//! Sweep: batch size × protocol (PBFT / MinBFT) × latency model (the E3
//! mesh-hop workload and a uniform-latency interconnect), with the
//! egress-serialization cost (`link_occupancy`) charging the per-message
//! fixed cost that batching amortizes. Metrics: committed ops per kcycle,
//! MAC operations per op (MinBFT USIG create+verify), protocol messages
//! per op, p50/p99 commit latency.
//!
//! Besides the table/`--json` rows, this binary writes **`BENCH_2.json`**
//! (machine-readable, self-validated by re-reading) to seed the repo's
//! recorded perf trajectory, and asserts the headline result: ≥2× ops/cycle
//! at batch=8 vs batch=1 on the mesh workload, safety checker green
//! throughout.

use rsoc_bench::{f1, f3, ExpOptions, Table};
use rsoc_bft::api::Cluster;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run, LatencyModel, RunConfig, RunReport};
use serde::Serialize;

/// Closed-loop clients; must reach the largest batch size so batches can
/// fill, while keeping the batch=1 egress backlog (clients x msgs/op x
/// occupancy) under the backups' 1500-cycle request patience — otherwise
/// the unbatched baseline melts down in view changes instead of just
/// being slow.
const CLIENTS: u32 = 16;
/// Cycles of sender-egress serialization per message (NoC packetization +
/// MAC check-in) — the fixed cost batching amortizes.
const LINK_OCCUPANCY: u64 = 8;
/// Flush patience for partially filled batches.
const BATCH_FLUSH: u64 = 100;

const BATCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];
/// Fault threshold for every swept cell (replica counts derive from it).
const F: u32 = 1;

#[derive(Serialize, Clone)]
struct Row {
    protocol: &'static str,
    latency_model: &'static str,
    batch_size: usize,
    committed: u64,
    ops_per_kcycle: f64,
    macs_per_op: f64,
    msgs_per_op: f64,
    p50_latency: f64,
    p99_latency: f64,
    safety_ok: bool,
}

#[derive(Serialize)]
struct Summary {
    protocol: &'static str,
    latency_model: &'static str,
    speedup_batch8_vs_1: f64,
    mac_ratio_batch8_vs_1: f64,
}

#[derive(Serialize)]
struct Bench2 {
    experiment: &'static str,
    schema_version: u32,
    quick: bool,
    clients: u32,
    requests_per_client: u64,
    link_occupancy: u64,
    batch_flush: u64,
    rows: Vec<Row>,
    summaries: Vec<Summary>,
}

/// The E3 placement: replica i on tile (i % 4, i / 4), clients at the I/O
/// corner of the mesh.
fn mesh_latency(n: u32) -> LatencyModel {
    LatencyModel::MeshHops {
        replica_at: (0..n).map(|i| ((i % 4) as u16, (i / 4) as u16)).collect(),
        client_at: (0, 0),
        per_hop: 1,
        overhead: 3,
    }
}

fn config(requests: u64, batch: usize, latency: LatencyModel, seed: u64) -> RunConfig {
    RunConfig::builder()
        .f(F)
        .clients(CLIENTS)
        .requests_per_client(requests)
        .seed(seed)
        .latency(latency)
        .max_cycles(50_000_000)
        .batch_size(batch)
        .batch_flush(BATCH_FLUSH)
        .link_occupancy(LINK_OCCUPANCY)
        .build()
}

/// Runs one cell of the sweep, returning the report and total MAC ops
/// (USIG create + verify summed over replicas; 0 for the unauthenticated
/// PBFT model).
fn run_cell(protocol: &'static str, cfg: &RunConfig) -> (RunReport, u64) {
    match protocol {
        "pbft" => {
            let mut cluster = PbftCluster::new(cfg);
            (run(&mut cluster, cfg), 0)
        }
        _ => {
            let mut cluster = MinBftCluster::new(cfg);
            let report = run(&mut cluster, cfg);
            let macs = cluster
                .nodes()
                .iter()
                .map(|n| {
                    let (created, verified) = n.mac_ops();
                    created + verified
                })
                .sum();
            (report, macs)
        }
    }
}

fn main() {
    let options = ExpOptions::from_args();
    let requests = options.trials(100);

    let mut table = Table::new(
        "F2 batched consensus: batch size x protocol x latency model",
        &["protocol", "latency", "batch", "ops/kcycle", "MACs/op", "msg/op", "lat_p50", "lat_p99"],
    );
    let mut rows: Vec<Row> = Vec::new();

    // Canonical cell grid (latency model × protocol × batch); every cell
    // derives its seed from its own parameters, so the sweep fans out
    // across worker threads and merges in this exact order.
    let cells: Vec<(&'static str, bool, &'static str, usize)> =
        [("mesh", true), ("uniform", false)]
            .into_iter()
            .flat_map(|(ln, mesh)| {
                ["pbft", "minbft"]
                    .into_iter()
                    .flat_map(move |p| BATCH_SIZES.into_iter().map(move |b| (ln, mesh, p, b)))
            })
            .collect();
    let results = rsoc_bench::run_cells(&cells, options.jobs, |&(_, mesh, protocol, batch)| {
        let n = if protocol == "pbft" { 3 * F + 1 } else { 2 * F + 1 };
        let latency =
            if mesh { mesh_latency(n) } else { LatencyModel::Uniform { min: 5, max: 15 } };
        let seed = 0xF2 + batch as u64;
        let cfg = config(requests, batch, latency, seed);
        run_cell(protocol, &cfg)
    });
    for (&(latency_name, _, protocol, batch), (report, macs)) in cells.iter().zip(&results) {
        assert!(report.safety_ok, "{protocol} batch={batch} violated safety");
        assert_eq!(
            report.committed,
            CLIENTS as u64 * requests,
            "{protocol} batch={batch} failed to commit the workload"
        );
        let row = Row {
            protocol: if protocol == "pbft" { "pbft" } else { "minbft" },
            latency_model: latency_name,
            batch_size: report.batch_size,
            committed: report.committed,
            ops_per_kcycle: report.throughput_per_kcycle(),
            macs_per_op: *macs as f64 / report.committed as f64,
            msgs_per_op: report.messages_per_commit(),
            p50_latency: report.commit_latency.median().unwrap_or(0.0),
            p99_latency: report.commit_latency.quantile(0.99).unwrap_or(0.0),
            safety_ok: report.safety_ok,
        };
        table.row(
            &[
                row.protocol.to_string(),
                latency_name.to_string(),
                batch.to_string(),
                f3(row.ops_per_kcycle),
                f1(row.macs_per_op),
                f1(row.msgs_per_op),
                f1(row.p50_latency),
                f1(row.p99_latency),
            ],
            &row,
        );
        rows.push(row);
    }
    table.print(&options);

    // Headline summaries: batch=8 vs batch=1 per (protocol, latency model).
    let cell = |proto: &str, lat: &str, batch: usize| -> &Row {
        rows.iter()
            .find(|r| r.protocol == proto && r.latency_model == lat && r.batch_size == batch)
            .expect("swept cell")
    };
    let mut summaries = Vec::new();
    for lat in ["mesh", "uniform"] {
        for proto in ["pbft", "minbft"] {
            let b1 = cell(proto, lat, 1);
            let b8 = cell(proto, lat, 8);
            summaries.push(Summary {
                protocol: b8.protocol,
                latency_model: b1.latency_model,
                speedup_batch8_vs_1: b8.ops_per_kcycle / b1.ops_per_kcycle,
                mac_ratio_batch8_vs_1: if b1.macs_per_op > 0.0 {
                    b8.macs_per_op / b1.macs_per_op
                } else {
                    0.0
                },
            });
        }
    }
    println!();
    for s in &summaries {
        println!(
            "  {}/{}: batch=8 gives {:.2}x ops/cycle vs batch=1{}",
            s.protocol,
            s.latency_model,
            s.speedup_batch8_vs_1,
            if s.mac_ratio_batch8_vs_1 > 0.0 {
                format!(" ({:.2}x the MACs/op)", s.mac_ratio_batch8_vs_1)
            } else {
                String::new()
            }
        );
    }

    let bench = Bench2 {
        experiment: "f2_batching",
        schema_version: 1,
        quick: options.quick,
        clients: CLIENTS,
        requests_per_client: requests,
        link_occupancy: LINK_OCCUPANCY,
        batch_flush: BATCH_FLUSH,
        rows,
        summaries,
    };
    let json = serde_json::to_string(&bench).expect("serialize BENCH_2");
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    // Self-validation: the file on disk must parse back and carry every
    // swept cell — a malformed perf record should fail loudly, not seed
    // the trajectory with garbage.
    let reread = std::fs::read_to_string("BENCH_2.json").expect("re-read BENCH_2.json");
    let parsed: serde_json::Value = serde_json::from_str(&reread).expect("BENCH_2.json malformed");
    let row_count = parsed["rows"].as_array().map(|a| a.len()).unwrap_or(0);
    assert_eq!(row_count, 2 * 2 * BATCH_SIZES.len(), "BENCH_2.json row count");
    println!("\nwrote BENCH_2.json ({row_count} rows, validated)");

    // The acceptance gate for the full run; quick runs are too short for a
    // stable ratio but still exercise the pipeline end to end.
    if !options.quick {
        for s in bench.summaries.iter().filter(|s| s.latency_model == "mesh") {
            assert!(
                s.speedup_batch8_vs_1 >= 2.0,
                "{} mesh speedup {:.2} below the 2x target",
                s.protocol,
                s.speedup_batch8_vs_1
            );
        }
    }
    println!(
        "\nExpected shape: ops/cycle rises steeply with batch size while\n\
         MACs/op and msg/op fall ~1/B; p50 latency pays a bounded batching\n\
         tax at low load. The mesh rows are the E3 workload's placement\n\
         under egress serialization - the recorded perf baseline."
    );
}
