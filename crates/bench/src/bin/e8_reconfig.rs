//! E8 — Resilient reconfiguration: voted vs direct privilege change
//! (§II-E, paper's citation \[55\]).
//!
//! Claim: "privilege change must remain a trusted operation executed
//! consensually and enforced by a trusted-trustworthy component."
//!
//! Scenario: k kernel replicas manage the fabric; c of them are
//! compromised and try to install a malicious bitstream. Baseline: each
//! kernel holds a direct ICAP grant (and the signing key). Resilient: only
//! the vote-gate principal can write; operations need a quorum of votes.
//! Metric: contamination rate (malicious block ends up enabled).

use rsoc_bench::{f3, ExpOptions, Table};
use rsoc_crypto::MacKey;
use rsoc_fpga::{Bitstream, FpgaFabric, Icap, Principal, ReconfigEngine, Region};
use rsoc_soc::{PrivilegeGate, PrivilegedOp, Vote};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mode: &'static str,
    kernels: u32,
    compromised: u32,
    contaminated: bool,
    legit_ops_ok: bool,
}

const FRAME_WORDS: usize = 4;
const MALICIOUS_BLOCK: u64 = 0xBAD;

/// Direct-grant baseline: every kernel may write everywhere and knows the
/// signing key (it must, to install legitimate updates).
fn direct_mode(kernels: u32, compromised: u32) -> (bool, bool) {
    let key = MacKey::derive(0xE8, "bitstreams");
    let mut icap = Icap::new(key.clone());
    for k in 0..kernels {
        icap.allow(Principal(k), Region::new(0, 16));
    }
    let mut engine = ReconfigEngine::new(FpgaFabric::new(4, 4, FRAME_WORDS), icap);
    // A legitimate update by kernel 0 (assume kernel 0 correct when c < kernels).
    let legit_region = Region::new(0, 2);
    let legit = Bitstream::for_variant(1, legit_region, FRAME_WORDS, &key);
    let legit_ok = engine.reconfigure(Principal(0), legit_region, &legit, 1).is_ok();
    // Every compromised kernel tries to install its implant.
    let mut contaminated = false;
    for c in 0..compromised {
        let region = Region::new(4 + c * 2, 2);
        let evil = Bitstream::for_variant(0xBAD0 + c as u64, region, FRAME_WORDS, &key);
        if engine
            .reconfigure(Principal(kernels - 1 - c), region, &evil, MALICIOUS_BLOCK + c as u64)
            .is_ok()
        {
            contaminated = true;
        }
    }
    (contaminated, legit_ok)
}

/// Voted mode: only the gate writes; quorum = majority of kernels.
fn voted_mode(kernels: u32, compromised: u32) -> (bool, bool) {
    let key = MacKey::derive(0xE8, "bitstreams");
    let mut icap = Icap::new(key.clone());
    icap.allow(PrivilegeGate::GATE_PRINCIPAL, Region::new(0, 16));
    let mut engine = ReconfigEngine::new(FpgaFabric::new(4, 4, FRAME_WORDS), icap);
    let threshold = (kernels / 2 + 1) as usize;
    let mut gate = PrivilegeGate::new(0xE8, kernels, threshold);

    let correct: Vec<u32> = (0..kernels - compromised).collect();
    let bad: Vec<u32> = (kernels - compromised..kernels).collect();

    // Legitimate update: correct kernels vote for it (compromised abstain —
    // worst case for liveness).
    let legit_region = Region::new(0, 2);
    let legit_op = PrivilegedOp::Reconfigure {
        region: legit_region,
        block: 1,
        bitstream: Bitstream::for_variant(1, legit_region, FRAME_WORDS, &key),
    };
    let votes: Vec<Vote> =
        correct.iter().map(|k| Vote::sign(*k, gate.kernel_key(*k).unwrap(), &legit_op)).collect();
    let legit_ok = gate.execute(&mut engine, &legit_op, &votes).is_ok();

    // Attack: compromised kernels vote for the implant; they also forge
    // votes in correct kernels' names (without those keys).
    let region = Region::new(8, 2);
    let evil_op = PrivilegedOp::Reconfigure {
        region,
        block: MALICIOUS_BLOCK,
        bitstream: Bitstream::for_variant(0xBAD0, region, FRAME_WORDS, &key),
    };
    let mut evil_votes: Vec<Vote> =
        bad.iter().map(|k| Vote::sign(*k, gate.kernel_key(*k).unwrap(), &evil_op)).collect();
    for k in &correct {
        // Forgery attempt with a guessed key.
        evil_votes.push(Vote::sign(*k, &MacKey::derive(999, "guess"), &evil_op));
    }
    let contaminated = gate.execute(&mut engine, &evil_op, &evil_votes).is_ok()
        // Bypass attempt at the raw ICAP.
        || engine
            .reconfigure(Principal(bad.first().copied().unwrap_or(0)), region,
                &Bitstream::for_variant(0xBAD0, region, FRAME_WORDS, &key), MALICIOUS_BLOCK)
            .is_ok();
    (contaminated, legit_ok)
}

fn main() {
    let options = ExpOptions::from_args();
    let mut table = Table::new(
        "E8 malicious reconfiguration: direct grants vs voted privilege gate",
        &["mode", "kernels", "compromised", "contaminated", "legit_ok"],
    );
    // Deterministic scenario grid: kernels × compromised × mode.
    type ModeFn = fn(u32, u32) -> (bool, bool);
    let cells: Vec<(u32, u32, &'static str, ModeFn)> = [3u32, 5]
        .into_iter()
        .flat_map(|kernels| {
            (0..=(kernels / 2)).flat_map(move |compromised| {
                [("direct", direct_mode as ModeFn), ("voted", voted_mode as ModeFn)]
                    .into_iter()
                    .map(move |(mode, f)| (kernels, compromised, mode, f))
            })
        })
        .collect();
    let outcomes = rsoc_bench::run_cells(&cells, options.jobs, |&(kernels, compromised, _, f)| {
        f(kernels, compromised)
    });
    for (&(kernels, compromised, mode, _), &(contaminated, legit_ok)) in cells.iter().zip(&outcomes)
    {
        table.row(
            &[
                mode.to_string(),
                kernels.to_string(),
                compromised.to_string(),
                contaminated.to_string(),
                legit_ok.to_string(),
            ],
            &Row { mode, kernels, compromised, contaminated, legit_ops_ok: legit_ok },
        );
    }
    table.print(&options);
    let _ = f3(0.0);
    println!(
        "\nExpected shape (paper §II-E / [55]): with direct grants a single\n\
         compromised kernel contaminates the fabric; behind the voted gate\n\
         any minority of compromised kernels achieves nothing — votes can't\n\
         be forged, duplicated, or replayed onto other operations, and the\n\
         raw-ICAP bypass dies at the ACL — while legitimate quorum\n\
         operations continue."
    );
}
