//! E5 — Diversity vs common-mode compromise (§II-B).
//!
//! Claim: "Resiliency through active replication is only guaranteed as long
//! as the replicas fail independently"; diversity avoids common-mode
//! failures and intrusions.
//!
//! Sweep: n = 4 replicas (f = 1), diversity degree d = 1..4 (number of
//! distinct variants). Metrics: fraction of the vulnerability universe
//! whose single exploit defeats the system, greedy number of exploits an
//! adversary needs, and Monte-Carlo campaign time to defeat.

use rsoc_bench::{f1 as fmt1, f3, ExpOptions, Table};
use rsoc_diversity::{
    common_mode_exposure, greedy_exploits_to_defeat, PoolConfig, VariantId, VariantPool,
};
use rsoc_sim::SimRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    diversity_degree: usize,
    vendors_used: usize,
    exposure: f64,
    greedy_exploits: usize,
    mean_exploits_mc: f64,
}

/// Monte-Carlo: adversary repeatedly picks a uniformly random vulnerability
/// to weaponize (zero-day discovery); counts exploits until > f replicas
/// fall. This complements the greedy (best-case-adversary) metric.
fn mc_exploits(pool: &VariantPool, assignment: &[VariantId], f: usize, rng: &mut SimRng) -> f64 {
    let universe = pool.config().vuln_universe as u64;
    let mut compromised = vec![false; assignment.len()];
    let mut tried = std::collections::BTreeSet::new();
    let mut exploits = 0f64;
    loop {
        if compromised.iter().filter(|c| **c).count() > f {
            return exploits;
        }
        if tried.len() as u64 == universe {
            return f64::INFINITY;
        }
        let vuln = rsoc_diversity::VulnId(rng.below(universe) as u32);
        if !tried.insert(vuln.0) {
            continue;
        }
        exploits += 1.0;
        for (i, id) in assignment.iter().enumerate() {
            if pool.variant(*id).map(|v| v.vulnerable_to(vuln)).unwrap_or(false) {
                compromised[i] = true;
            }
        }
    }
}

fn main() {
    let options = ExpOptions::from_args();
    let trials = options.trials(2_000);
    let root = SimRng::new(0xE5);
    let mut pool_rng = root.fork(0);
    // Sparser vulnerability space than the default so cross-variant
    // collisions are rare and the diversity effect is legible.
    let pool_config = PoolConfig {
        vuln_universe: 1_000,
        vendor_base_vulns: 3,
        variant_vulns: 5,
        ..Default::default()
    };
    let pool = VariantPool::generate(pool_config, &mut pool_rng);
    let n = 4usize;
    let f = 1usize;

    let mut table = Table::new(
        "E5 diversity degree vs common-mode compromise (n=4, f=1)",
        &["distinct_variants", "max_share", "vendors", "exposure", "greedy_k", "mc_mean_k"],
    );
    // One cell per diversity degree; Monte-Carlo streams fork from the
    // root by (degree, trial), so cells fan out across threads.
    let cells: Vec<usize> = (1..=4).collect();
    let mc_means = rsoc_bench::run_cells(&cells, options.jobs, |&d| {
        let assignment: Vec<VariantId> = (0..n).map(|i| VariantId((i % d) as u32)).collect();
        let mut mc_sum = 0.0;
        for t in 0..trials {
            let mut rng = root.fork(1_000 + d as u64 * trials + t);
            mc_sum += mc_exploits(&pool, &assignment, f, &mut rng);
        }
        mc_sum / trials as f64
    });
    for (&d, &mc_mean) in cells.iter().zip(&mc_means) {
        // d distinct variants spread over the 4 replicas, cross-vendor by
        // construction (variant id % vendors = vendor).
        let assignment: Vec<VariantId> = (0..n).map(|i| VariantId((i % d) as u32)).collect();
        let vendors: std::collections::BTreeSet<u32> =
            assignment.iter().map(|v| pool.variant(*v).unwrap().vendor.0).collect();
        let exposure = common_mode_exposure(&pool, &assignment, f);
        let greedy = greedy_exploits_to_defeat(&pool, &assignment, f).unwrap_or(0);
        let max_share = (0..d)
            .map(|v| assignment.iter().filter(|a| a.0 == v as u32).count())
            .max()
            .unwrap_or(0);
        table.row(
            &[
                d.to_string(),
                max_share.to_string(),
                vendors.len().to_string(),
                f3(exposure),
                greedy.to_string(),
                fmt1(mc_mean),
            ],
            &Row {
                diversity_degree: d,
                vendors_used: vendors.len(),
                exposure,
                greedy_exploits: greedy,
                mean_exploits_mc: mc_mean,
            },
        );
    }
    table.print(&options);
    println!(
        "\nExpected shape (paper §II-B): what matters is the *largest group of\n\
         replicas sharing a variant* (max_share): as long as max_share > f, a\n\
         single exploit defeats the system (greedy_k = 1), and partial\n\
         diversity even widens the fatal-vulnerability surface while\n\
         shrinking the blast radius. Only full diversity (max_share ≤ f)\n\
         forces the adversary to chain multiple distinct exploits — the\n\
         paper's point that replication pays only when replicas fail\n\
         independently."
    );
}
