//! E3 — Replication cost: PBFT (3f+1) vs MinBFT (2f+1) (§II-A, §III).
//!
//! Claim: hardware hybrids cut the replica requirement from 3f+1 to 2f+1
//! and simplify agreement (fewer phases, fewer messages).
//!
//! Sweep: f = 1..=4, closed-loop clients over NoC-hop latencies. Metrics:
//! replicas, protocol messages per committed op, median commit latency,
//! throughput.

use rsoc_bench::{f1, f3, ExpOptions, Table};
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run, LatencyModel, RunConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    protocol: &'static str,
    f: u32,
    replicas: usize,
    msgs_per_commit: f64,
    median_latency: f64,
    p99_latency: f64,
    throughput_per_kcycle: f64,
    committed: u64,
}

fn mesh_latency(n: u32) -> LatencyModel {
    // Replica i on tile (i % 4, i / 4) of an 8x8 mesh; clients at the I/O corner.
    LatencyModel::MeshHops {
        replica_at: (0..n).map(|i| ((i % 4) as u16, (i / 4) as u16)).collect(),
        client_at: (0, 0),
        per_hop: 1,
        overhead: 3,
    }
}

fn main() {
    let options = ExpOptions::from_args();
    let requests = options.trials(200);

    let mut table = Table::new(
        "E3 protocol cost vs fault threshold f",
        &["protocol", "f", "replicas", "msg/op", "lat_p50", "lat_p99", "ops/kcycle"],
    );
    // Canonical cell grid; each cell is a pure function of (f, protocol),
    // so the sweep fans out across worker threads.
    let cells: Vec<(u32, &'static str)> =
        (1..=4u32).flat_map(|f| [(f, "pbft"), (f, "minbft")]).collect();
    let reports = rsoc_bench::run_cells(&cells, options.jobs, |&(f, protocol)| {
        let n = if protocol == "pbft" { 3 * f + 1 } else { 2 * f + 1 };
        let config = RunConfig::builder()
            .f(f)
            .clients(4)
            .requests_per_client(requests)
            .seed(0xE3 + f as u64)
            .latency(mesh_latency(n))
            .max_cycles(200_000_000)
            .build();
        match protocol {
            "pbft" => run(&mut PbftCluster::new(&config), &config),
            _ => run(&mut MinBftCluster::new(&config), &config),
        }
    });
    for (&(f, protocol), report) in cells.iter().zip(&reports) {
        assert!(report.safety_ok, "{protocol} f={f} violated safety");
        let p50 = report.commit_latency.median().unwrap_or(0.0);
        let p99 = report.commit_latency.quantile(0.99).unwrap_or(0.0);
        table.row(
            &[
                protocol.to_string(),
                f.to_string(),
                report.n_replicas.to_string(),
                f1(report.messages_per_commit()),
                f1(p50),
                f1(p99),
                f3(report.throughput_per_kcycle()),
            ],
            &Row {
                protocol,
                f,
                replicas: report.n_replicas,
                msgs_per_commit: report.messages_per_commit(),
                median_latency: p50,
                p99_latency: p99,
                throughput_per_kcycle: report.throughput_per_kcycle(),
                committed: report.committed,
            },
        );
    }
    table.print(&options);
    println!(
        "\nExpected shape (paper §II-A/§III): MinBFT uses 2f+1 tiles vs PBFT's\n\
         3f+1, with clearly fewer protocol messages per op (two phases, no\n\
         all-to-all prepare), lower latency, higher throughput — the gap\n\
         widening with f."
    );
}
