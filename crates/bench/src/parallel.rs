//! Deterministic parallel sweep runner.
//!
//! Every experiment binary sweeps a grid of independent, seeded cells
//! (protocol × batch × window, fault-rate points, policy variants, …) —
//! each cell is a pure function of its parameters, so the only thing
//! serializing a full sweep was the `for` loop around it. [`run_cells`]
//! fans the cells out over `jobs` worker threads (`std::thread::scope`,
//! no dependencies) and merges results **in canonical cell order**: the
//! returned vector is indexed exactly like the input, so tables, JSON
//! records, and self-validation see byte-identical data whether the sweep
//! ran on 1 thread or 16. CI asserts this with a `--jobs 1` vs `--jobs N`
//! byte-compare of the emitted sweep JSON.
//!
//! Scheduling is a shared atomic cursor (work stealing by index): threads
//! claim the next unstarted cell, so a grid of unequal cell costs load-
//! balances without any cost model. Within one process the worker count
//! changes *which thread* computes a cell but never *what* it computes —
//! cells must not share mutable state (the binaries derive per-cell RNG
//! streams from per-cell seeds, never a shared sequential generator).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `work` over every cell, on `jobs` threads, returning results in
/// input order. `jobs` is clamped to `[1, cells.len()]`; `jobs == 1` runs
/// inline on the caller's thread (no pool, no locks).
pub fn run_cells<T, R, F>(cells: &[T], jobs: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, cells.len().max(1));
    if jobs <= 1 {
        return cells.iter().map(&work).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let r = work(&cells[i]);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("cell {i} produced no result (worker panicked?)"))
        })
        .collect()
}

/// Runs the shard `(i, n)` slice of `cells` — those with canonical index
/// `≡ i (mod n)` — on `jobs` threads, returning `(canonical_index,
/// result)` pairs in ascending index order. `shard == None` covers the
/// whole grid (then the indices are simply `0..cells.len()`).
///
/// Because every cell is a pure function of its parameters, running each
/// shard in a separate process and concatenating the pairs sorted by
/// canonical index reproduces [`run_cells`]'s output byte-identically —
/// that is the multi-machine sweep contract CI's shard-stitch gate
/// asserts.
pub fn run_cells_sharded<T, R, F>(
    cells: &[T],
    jobs: usize,
    shard: Option<(usize, usize)>,
    work: F,
) -> Vec<(usize, R)>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (i, n) = shard.unwrap_or((0, 1));
    let mine: Vec<usize> = (0..cells.len()).filter(|c| c % n == i).collect();
    let results = run_cells(&mine, jobs, |&c| work(&cells[c]));
    mine.into_iter().zip(results).collect()
}

/// The default worker count: the machine's available parallelism (1 when
/// it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order_regardless_of_jobs() {
        let cells: Vec<u64> = (0..100).collect();
        let sequential = run_cells(&cells, 1, |c| c * c);
        for jobs in [2, 3, 8, 64, 1000] {
            let parallel = run_cells(&cells, jobs, |c| c * c);
            assert_eq!(parallel, sequential, "jobs={jobs} must merge canonically");
        }
    }

    #[test]
    fn unequal_cell_costs_still_merge_in_order() {
        let cells: Vec<u64> = (0..32).collect();
        let out = run_cells(&cells, 4, |c| {
            // Inverted cost gradient: the first-claimed cells finish last.
            std::thread::sleep(std::time::Duration::from_micros(200 - c * 6));
            *c
        });
        assert_eq!(out, cells);
    }

    #[test]
    fn empty_and_single_cell_grids() {
        let none: Vec<u32> = Vec::new();
        assert!(run_cells(&none, 8, |c| *c).is_empty());
        assert_eq!(run_cells(&[7u32], 8, |c| *c), vec![7]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn shards_partition_and_stitch_to_the_whole_grid() {
        let cells: Vec<u64> = (0..23).collect();
        let whole: Vec<(usize, u64)> =
            run_cells_sharded(&cells, 2, None, |c| c * 7).into_iter().collect();
        assert_eq!(whole.len(), 23);
        for n in [1usize, 2, 3, 5] {
            let mut stitched: Vec<(usize, u64)> = (0..n)
                .flat_map(|i| run_cells_sharded(&cells, 2, Some((i, n)), |c| c * 7))
                .collect();
            stitched.sort_by_key(|&(i, _)| i);
            assert_eq!(stitched, whole, "{n} shards must stitch to the whole sweep");
        }
    }
}
