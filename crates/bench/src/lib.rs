//! # rsoc-bench — experiment harness
//!
//! One binary per experiment (see `DESIGN.md` §3 for the experiment index):
//!
//! | binary | paper claim |
//! |---|---|
//! | `e1_gate_redundancy` | gate-level redundancy trades area for masking (§I) |
//! | `e2_hybrid_ecc` | plain vs parity vs SEC-DED USIG counters (§III) |
//! | `e3_bft_cost` | MinBFT 2f+1 vs PBFT 3f+1 cost (§II-A, §III) |
//! | `e4_passive_active` | passive failover gap vs active masking (§II-A) |
//! | `e5_diversity` | diversity vs common-mode compromise (§II-B) |
//! | `e6_rejuvenation` | rejuvenation policies vs APT (§II-C) |
//! | `e7_adaptation` | static vs adaptive deployments (§II-D) |
//! | `e8_reconfig` | voted vs direct privilege change (§II-E) |
//! | `e9_fpga_relocation` | relocation vs grid backdoors (§II-C/E) |
//! | `e10_noc_faults` | routing policies vs link faults (§I) |
//! | `f1_layered_stack` | full-stack ablation (Fig. 1) |
//! | `f2_batching` | batched consensus + amortized authentication (writes `BENCH_2.json`) |
//! | `f3_simcore` | simulation-core rework wall-clock (writes `BENCH_3.json`) |
//! | `f4_replica_state` | dense replica state, virtual-time-identical (writes `BENCH_4.json`) |
//! | `f5_scenarios` | adversarial scenario campaign, oracle-judged (writes `BENCH_5.json`) |
//!
//! Every binary prints an aligned table to stdout and, with `--json`, one
//! JSON object per row (machine-readable for EXPERIMENTS.md regeneration).
//! `--quick` cuts trial counts for smoke runs.

use serde::Serialize;

pub mod parallel;
pub use parallel::{default_jobs, run_cells, run_cells_sharded};

/// Shared command-line options for experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Emit one JSON object per row after the table.
    pub json: bool,
    /// Reduce trial counts for a fast smoke run.
    pub quick: bool,
    /// Worker threads for the parallel sweep runner (`--jobs N`; defaults
    /// to the machine's available parallelism). Results are merged in
    /// canonical cell order, so output is identical for any value.
    pub jobs: usize,
    /// Cell partition for multi-machine sweeps (`--shard i/N`): this
    /// invocation computes only cells whose canonical index is `i mod N`.
    /// Each cell is a pure function of its parameters, so concatenating
    /// the shards' records in canonical index order reproduces the
    /// unsharded sweep byte-identically. `None` = the whole grid.
    pub shard: Option<(usize, usize)>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { json: false, quick: false, jobs: default_jobs(), shard: None }
    }
}

impl ExpOptions {
    /// Parses `--json` / `--quick` / `--jobs N` / `--shard i/N` from
    /// `std::env::args`.
    pub fn from_args() -> Self {
        let mut o = ExpOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => o.json = true,
                "--quick" => o.quick = true,
                "--jobs" => {
                    let v = args.next().unwrap_or_default();
                    o.jobs = v.parse().unwrap_or_else(|_| {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    });
                    o.jobs = o.jobs.max(1);
                }
                "--shard" => {
                    let v = args.next().unwrap_or_default();
                    o.shard = Some(parse_shard(&v).unwrap_or_else(|| {
                        eprintln!("--shard needs i/N with 0 <= i < N, got {v:?}");
                        std::process::exit(2);
                    }));
                }
                other => eprintln!("ignoring unknown argument: {other}"),
            }
        }
        o
    }

    /// Scales a trial count down in quick mode.
    pub fn trials(&self, full: u64) -> u64 {
        if self.quick {
            (full / 10).max(1)
        } else {
            full
        }
    }
}

/// Parses a `i/N` shard designator (`0 <= i < N`, `N >= 1`).
pub fn parse_shard(v: &str) -> Option<(usize, usize)> {
    let (i, n) = v.split_once('/')?;
    let (i, n) = (i.parse::<usize>().ok()?, n.parse::<usize>().ok()?);
    (n >= 1 && i < n).then_some((i, n))
}

/// A table printer that also serializes rows as JSON.
#[derive(Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    json_rows: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            json_rows: Vec::new(),
        }
    }

    /// Adds a row: display cells plus a serializable record for `--json`.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count or the record
    /// fails to serialize (a bug in the experiment).
    pub fn row<T: Serialize>(&mut self, cells: &[String], record: &T) {
        assert_eq!(cells.len(), self.headers.len(), "cell/header mismatch");
        self.rows.push(cells.to_vec());
        self.json_rows.push(serde_json::to_string(record).expect("row serialization"));
    }

    /// Prints the aligned table (and JSON lines when requested).
    pub fn print(&self, options: &ExpOptions) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
        for row in &self.rows {
            line(row);
        }
        if options.json {
            for j in &self.json_rows {
                println!("{j}");
            }
        }
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Rec {
        a: u32,
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["1".into(), "2".into()], &Rec { a: 1 });
        t.print(&ExpOptions { json: true, quick: false, jobs: 1, shard: None });
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn quick_scales_trials() {
        let q = ExpOptions { json: false, quick: true, jobs: 1, shard: None };
        assert_eq!(q.trials(1000), 100);
        assert_eq!(q.trials(5), 1);
        let f = ExpOptions::default();
        assert_eq!(f.trials(1000), 1000);
    }

    #[test]
    #[should_panic(expected = "cell/header mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["1".into()], &Rec { a: 1 });
    }
}
