//! Property tests for the multi-machine sweep contract: running a grid
//! in shards and stitching the pieces back together must reproduce the
//! unsharded single-threaded sweep **byte-identically** — same cell
//! records, same merged histograms. This is the invariant the f8
//! campaign's `--shard i/N` / `--stitch` pipeline and CI's shard-stitch
//! gate rest on.

use proptest::prelude::*;
use rsoc_bench::run_cells_sharded;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run_open_loop, OpenLoopSpec, RunConfig};
use rsoc_sim::{Arrival, KeyDist, LogHistogram};
use serde::Serialize;

const PROTOCOLS: [&str; 3] = ["pbft", "minbft", "passive"];
const BATCHES: [usize; 2] = [1, 8];

/// The serialized form a sweep would record per cell: every counter plus
/// the sparse histogram, so byte-comparing JSON covers the whole report.
#[derive(Serialize)]
struct CellRecord {
    protocol: &'static str,
    batch: usize,
    issued: u64,
    committed: u64,
    distinct_users: u64,
    retries: u64,
    messages_total: u64,
    duration_cycles: u64,
    hist_bucket_indices: Vec<u64>,
    hist_bucket_counts: Vec<u64>,
}

fn run_cell(protocol: &'static str, batch: usize, seed: u64) -> String {
    let cfg =
        RunConfig { f: 1, seed, batch_size: batch, max_cycles: 20_000_000, ..RunConfig::default() };
    let spec = OpenLoopSpec {
        arrival: Arrival::Poisson { mean_gap: 200 },
        mods: vec![],
        users: KeyDist::HotSet { n: 400, hot: 8, hot_per_mille: 600 },
        total_ops: 120,
    };
    let scenario = rsoc_bft::adversary::Scenario::none();
    let r = match protocol {
        "pbft" => run_open_loop(&mut PbftCluster::new(&cfg), &cfg, &spec, &scenario),
        "minbft" => run_open_loop(&mut MinBftCluster::new(&cfg), &cfg, &spec, &scenario),
        _ => run_open_loop(&mut PassiveCluster::new(&cfg), &cfg, &spec, &scenario),
    };
    let (hist_bucket_indices, hist_bucket_counts) = r.latency.to_sparse();
    serde_json::to_string(&CellRecord {
        protocol,
        batch,
        issued: r.issued,
        committed: r.committed,
        distinct_users: r.distinct_users,
        retries: r.retries,
        messages_total: r.messages_total,
        duration_cycles: r.duration_cycles,
        hist_bucket_indices,
        hist_bucket_counts,
    })
    .expect("serialize cell record")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharding the protocol × batch grid any way and stitching the
    /// shard outputs in canonical order reproduces the unsharded
    /// `--jobs 1` sweep byte-for-byte.
    #[test]
    fn sharded_sweep_stitches_byte_identically(
        seed in any::<u64>(),
        n_shards in 1usize..5,
        shard_jobs in 1usize..4,
    ) {
        let cells: Vec<(&'static str, usize)> = PROTOCOLS
            .iter()
            .flat_map(|p| BATCHES.iter().map(move |b| (*p, *b)))
            .collect();
        // Per-cell seed derived from coordinates, as every campaign does.
        let whole: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, (p, b))| run_cell(p, *b, seed ^ ((i as u64) << 8)))
            .collect();
        let mut stitched: Vec<(usize, String)> = (0..n_shards)
            .flat_map(|s| {
                run_cells_sharded(&cells, shard_jobs, Some((s, n_shards)), |&(p, b)| {
                    let i = cells.iter().position(|c| *c == (p, b)).unwrap();
                    run_cell(p, b, seed ^ ((i as u64) << 8))
                })
            })
            .collect();
        stitched.sort_by_key(|&(i, _)| i);
        let indices: Vec<usize> = stitched.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(indices, (0..cells.len()).collect::<Vec<_>>());
        for (i, (_, rec)) in stitched.iter().enumerate() {
            prop_assert_eq!(rec, &whole[i], "cell {} diverged across shard boundaries", i);
        }
    }

    /// Merging per-shard histograms in any partition order equals the
    /// histogram of all samples recorded in one place — sparse encoding
    /// included. (This is why per-cell percentiles survive stitching.)
    #[test]
    fn histogram_merge_is_partition_invariant(
        samples in proptest::collection::vec(any::<u64>(), 1..400),
        cuts in proptest::collection::vec(any::<u64>(), 0..6),
    ) {
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        // Partition the sample stream at the (sorted, deduped) cut points.
        let mut bounds: Vec<usize> =
            cuts.iter().map(|c| (*c % samples.len() as u64) as usize).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut merged = LogHistogram::new();
        for w in bounds.windows(2) {
            let mut part = LogHistogram::new();
            for &s in &samples[w[0]..w[1]] {
                part.record(s);
            }
            merged.merge(&part);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.to_sparse(), whole.to_sparse());
        prop_assert_eq!(merged.quantile(0.999), whole.quantile(0.999));
    }
}
