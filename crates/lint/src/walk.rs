//! Workspace walker: finds the `.rs` files to audit and classifies each
//! by [`Tier`].
//!
//! * `crates/{bft,hybrid,crypto,sim,noc,hw}/**` — protocol-core (the
//!   deterministic-replay contract applies).
//! * every other workspace `.rs` file (`crates/bench`, `crates/soc`,
//!   `crates/transport`, the umbrella `src/`+`tests/`, this linter) —
//!   harness.
//! * `vendor/`, `target/`, `.git/`, and lint fixture trees are skipped
//!   entirely: vendored shims are third-party API surface, and fixtures
//!   are *deliberately* violating.

use crate::rules::Tier;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose code is on the deterministic protocol/replay path.
pub const PROTOCOL_CORE_CRATES: &[&str] = &["bft", "crypto", "hw", "hybrid", "noc", "sim"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "lint_fixtures"];

/// One file scheduled for linting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Path relative to the walk root (stable diagnostic prefix).
    pub path: PathBuf,
    /// Which rule catalog applies.
    pub tier: Tier,
}

/// Collects every auditable `.rs` file under `root`, classified by tier.
/// When `force_tier` is set, classification is overridden (used to lint
/// fixture trees as protocol-core). Results are sorted by path so runs
/// are byte-reproducible.
pub fn collect(root: &Path, force_tier: Option<Tier>) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    descend(root, root, &mut files)?;
    files.sort();
    Ok(files
        .into_iter()
        .map(|path| {
            let tier = force_tier.unwrap_or_else(|| classify(&path));
            SourceFile { path, tier }
        })
        .collect())
}

fn descend(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            descend(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Tier of a root-relative path: `crates/<name>/…` consults the
/// protocol-core list; everything else is harness.
pub fn classify(rel: &Path) -> Tier {
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if parts.next().as_deref() == Some("crates") {
        if let Some(krate) = parts.next() {
            if PROTOCOL_CORE_CRATES.contains(&krate.as_ref()) {
                return Tier::ProtocolCore;
            }
        }
    }
    Tier::Harness
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_crate() {
        assert_eq!(classify(Path::new("crates/bft/src/pbft.rs")), Tier::ProtocolCore);
        assert_eq!(classify(Path::new("crates/sim/src/lib.rs")), Tier::ProtocolCore);
        assert_eq!(classify(Path::new("crates/bench/src/bin/f1.rs")), Tier::Harness);
        // The TCP plane is harness: it owns wall-clock time and sockets,
        // which the deterministic-replay contract forbids in core.
        assert_eq!(classify(Path::new("crates/transport/src/node.rs")), Tier::Harness);
        // The durable store is harness too: it owns the filesystem, but
        // its parsers still carry `// lint: ingress` contracts.
        assert_eq!(classify(Path::new("crates/store/src/lib.rs")), Tier::Harness);
        assert_eq!(classify(Path::new("crates/lint/src/main.rs")), Tier::Harness);
        assert_eq!(classify(Path::new("src/lib.rs")), Tier::Harness);
        assert_eq!(classify(Path::new("tests/properties.rs")), Tier::Harness);
    }

    #[test]
    fn walk_skips_vendor_and_fixtures() {
        // Walk this crate's own tree: fixtures must be excluded.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = collect(root, None).unwrap();
        assert!(!files.is_empty());
        assert!(files.iter().all(|f| !f.path.to_string_lossy().contains("lint_fixtures")));
        assert!(files.iter().any(|f| f.path.ends_with("src/lexer.rs")));
        let sorted: Vec<_> = files.iter().map(|f| f.path.clone()).collect();
        let mut resorted = sorted.clone();
        resorted.sort();
        assert_eq!(sorted, resorted, "deterministic order");
    }

    #[test]
    fn forced_tier_overrides_classification() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let files = collect(&root, Some(Tier::ProtocolCore)).unwrap();
        assert!(files.iter().all(|f| f.tier == Tier::ProtocolCore));
    }
}
