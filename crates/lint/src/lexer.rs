//! A small self-contained Rust lexer — just enough syntax awareness for
//! the lint rules, with zero external parser dependencies (the vendored
//! workspace cannot pull in `syn`).
//!
//! The lexer splits a source file into two parallel streams:
//!
//! * [`Token`]s — identifiers, punctuation, and opaque literals, each
//!   tagged with its 1-based line. String/char/byte/raw-string literals
//!   are consumed as single [`Tok::Literal`] tokens so their *content*
//!   can never trigger an identifier rule (a doc string mentioning
//!   `HashMap` is not a determinism violation).
//! * [`Comment`]s — line and block comments with their text, starting
//!   line, and whether code precedes them on the same line (trailing vs
//!   standalone — the distinction the suppression scoping rules need).
//!
//! It handles the constructs that would otherwise desynchronize a naive
//! scanner: raw strings (`r#"…"#`, any hash depth), byte and raw-byte
//! strings, raw identifiers (`r#match`), char literals vs lifetimes
//! (`'a'` vs `'a`), escapes, and *nested* block comments.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `HashMap`, `clone`, …).
    Ident(String),
    /// A lifetime (`'a`, `'static`) — kept distinct so char-literal
    /// handling cannot eat a following token.
    Lifetime(String),
    /// A single punctuation character (`.`, `!`, `[`, …).
    Punct(char),
    /// Any literal (string, raw string, char, byte, number). Content is
    /// deliberately discarded: literals can never trip identifier rules.
    Literal,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment (line or block) with enough context for region and
/// suppression parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text *without* the `//` / `/*` delimiters, untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when a non-whitespace token precedes the comment on its line
    /// (a trailing comment annotates its own line; a standalone comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// The output of [`lex`]: token and comment streams for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs are
/// tolerated (consumed to end of input) — the linter must never panic on
/// the code it audits.
pub fn lex(src: &str) -> Lexed {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, line_had_code: false, out: Lexed::default() }
        .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted on the current line.
    line_had_code: bool,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                b'\n' => {
                    self.line += 1;
                    self.line_had_code = false;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.string_prefix() => {}
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    self.emit(Tok::Punct(c as char));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, tok: Tok) {
        self.out.tokens.push(Token { tok, line: self.line });
        self.line_had_code = true;
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let trailing = self.line_had_code;
        let line = self.line;
        while self.peek(0).is_some_and(|c| c != b'\n') {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line, trailing });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_had_code;
        self.pos += 2;
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.src.len();
        while let Some(c) = self.peek(0) {
            if c == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if c == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                if depth == 0 {
                    end = self.pos;
                    self.pos += 2;
                    break;
                }
                self.pos += 2;
            } else {
                if c == b'\n' {
                    self.line += 1;
                    self.line_had_code = false;
                }
                self.pos += 1;
            }
        }
        let end = end.min(self.src.len());
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.comments.push(Comment { text, line, trailing });
    }

    /// Consumes a normal (escaped) string or byte-string body starting at
    /// the opening quote.
    fn string(&mut self) {
        self.emit(Tok::Literal);
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.line_had_code = false;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a raw (or raw-byte) string: `pos` is at the first `#` or
    /// the opening quote; terminates on `"` followed by `hashes` hashes.
    fn raw_string(&mut self) {
        self.emit(Tok::Literal);
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                self.line += 1;
                self.line_had_code = false;
                self.pos += 1;
                continue;
            }
            if c == b'"' && (1..=hashes).all(|i| self.peek(i) == Some(b'#')) {
                self.pos += 1 + hashes;
                return;
            }
            self.pos += 1;
        }
    }

    /// Detects `r"`, `r#"`, `b"`, `b'`, `br"`/`br#"` prefixes (and raw
    /// identifiers `r#ident`). Returns true when it consumed something.
    fn string_prefix(&mut self) -> bool {
        let c = self.peek(0).unwrap_or(0);
        match (c, self.peek(1)) {
            (b'r', Some(b'"')) => {
                self.pos += 1;
                self.raw_string();
                true
            }
            (b'r', Some(b'#')) => {
                // Raw string (`r#"…"#`) or raw identifier (`r#match`).
                let mut i = 1;
                while self.peek(i) == Some(b'#') {
                    i += 1;
                }
                if self.peek(i) == Some(b'"') {
                    self.pos += 1;
                    self.raw_string();
                } else {
                    self.pos += 2; // skip `r#`, lex the ident normally
                    self.ident();
                }
                true
            }
            (b'b', Some(b'"')) => {
                self.pos += 1;
                self.string();
                true
            }
            (b'b', Some(b'\'')) => {
                self.pos += 1;
                self.char_literal();
                true
            }
            (b'b', Some(b'r')) if matches!(self.peek(2), Some(b'"') | Some(b'#')) => {
                self.pos += 2;
                self.raw_string();
                true
            }
            _ => false,
        }
    }

    /// At a `'`: disambiguates char literals from lifetimes.
    fn char_or_lifetime(&mut self) {
        let next = self.peek(1);
        let is_ident_start = next.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic());
        // `'a'` is a char; `'a` / `'static` are lifetimes. An escape or a
        // non-identifier char (`'\n'`, `'('`) is always a char literal.
        if is_ident_start && self.peek(2) != Some(b'\'') {
            self.pos += 1;
            let start = self.pos;
            while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
                self.pos += 1;
            }
            let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.emit(Tok::Lifetime(name));
        } else {
            self.char_literal();
        }
    }

    /// Consumes a char literal starting at the opening `'`.
    fn char_literal(&mut self) {
        self.emit(Tok::Literal);
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => return, // unterminated; don't swallow the file
                _ => self.pos += 1,
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.emit(Tok::Ident(name));
    }

    fn number(&mut self) {
        self.emit(Tok::Literal);
        // Digits, `_`, type suffixes, hex letters; one fractional part
        // (careful: `1..2` is a range, not a float).
        while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
                self.pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, u32)> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some((s, t.line)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tracks_lines_and_idents() {
        let src = "let a = 1;\nlet bb = a;\n";
        assert_eq!(
            idents(src),
            vec![
                ("let".into(), 1),
                ("a".into(), 1),
                ("let".into(), 2),
                ("bb".into(), 2),
                ("a".into(), 2)
            ]
        );
    }

    #[test]
    fn strings_hide_their_content() {
        let src = "let s = \"HashMap uses unsafe\"; let t = r#\"Instant \" quote\"#;";
        let names: Vec<String> = idents(src).into_iter().map(|(n, _)| n).collect();
        assert!(!names.contains(&"HashMap".to_string()));
        assert!(!names.contains(&"Instant".to_string()));
        assert!(names.contains(&"t".to_string()), "lexer resynced after the raw string");
    }

    #[test]
    fn raw_string_with_embedded_escape_resyncs() {
        // In a raw string `\` is literal: a naive scanner would treat `\"`
        // as an escape and miss the terminator.
        let src = "let s = r\"back\\\"; let HashMap = 1;";
        let names: Vec<String> = idents(src).into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"HashMap".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a".to_string(), "a".to_string()]);
        let literals = lexed.tokens.iter().filter(|t| t.tok == Tok::Literal).count();
        assert_eq!(literals, 2, "two char literals");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"x\\\"y\"; let b = br#\"raw \" inner\"#; let c = b'q'; done";
        let names: Vec<String> = idents(src).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.last().map(String::as_str), Some("done"));
    }

    #[test]
    fn raw_identifier() {
        let names: Vec<String> = idents("let r#match = 1;").into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["let".to_string(), "match".to_string()]);
    }

    #[test]
    fn comments_are_captured_with_position() {
        let src = "let a = 1; // trailing note\n// standalone\n/* block\nspans */ let b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].text, " trailing note");
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[2].line, 3);
        assert!(!lexed.comments[2].trailing);
        assert!(lexed.comments[2].text.contains("spans"));
        // Code resumes on line 4 after the block comment.
        let b = lexed.tokens.iter().find(|t| t.tok == Tok::Ident("b".into())).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("still comment"));
        let names: Vec<String> = lexed
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["let".to_string(), "x".to_string()]);
    }

    #[test]
    fn numbers_are_opaque() {
        // `1..2` must not eat the range dots; `0x2e` and `1.5e3` lex as one
        // literal each.
        let lexed = lex("a[1..2]; let h = 0x2e; let f = 1.5;");
        let puncts: Vec<char> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts.iter().filter(|c| **c == '.').count(), 2, "range dots survive");
    }

    #[test]
    fn tolerates_unterminated_constructs() {
        // Must not panic or loop forever.
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("let c = 'x");
        lex("let r = r#\"unterminated");
    }
}
