//! CLI for the workspace lint pass.
//!
//! ```text
//! cargo run -p rsoc_lint [--release] -- [--root DIR] [--tier TIER] [--github]
//! ```
//!
//! With no arguments the current directory (the workspace root in CI) is
//! walked and every finding printed as `file:line: [rule] message`.
//! `--tier protocol-core|harness` overrides per-crate classification —
//! CI uses it to prove the rules still fire on the deliberately-bad
//! fixture tree. `--github` additionally emits grouped `::error::`
//! workflow annotations.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use rsoc_lint::{collect, lint_source, Tier};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    tier: Option<Tier>,
    github: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: PathBuf::from("."), tier: None, github: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--tier" => match it.next().as_deref() {
                Some("protocol-core") => args.tier = Some(Tier::ProtocolCore),
                Some("harness") => args.tier = Some(Tier::Harness),
                other => {
                    return Err(format!("--tier needs `protocol-core` or `harness`, got {other:?}"))
                }
            },
            "--github" => args.github = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rsoc_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let files = match collect(&args.root, args.tier) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rsoc_lint: cannot walk {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    let mut total = 0usize;
    let mut audited = 0usize;
    for file in &files {
        let abs = args.root.join(&file.path);
        let src = match std::fs::read_to_string(&abs) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rsoc_lint: cannot read {}: {e}", abs.display());
                return ExitCode::from(2);
            }
        };
        audited += 1;
        let findings = lint_source(&src, file.tier);
        if findings.is_empty() {
            continue;
        }
        let shown = file.path.display();
        if args.github {
            println!("::group::{shown} ({} findings)", findings.len());
        }
        for f in &findings {
            println!("{shown}:{}: [{}] {}", f.line, f.rule, f.msg);
            if args.github {
                println!("::error file={shown},line={}::[{}] {}", f.line, f.rule, f.msg);
            }
        }
        if args.github {
            println!("::endgroup::");
        }
        total += findings.len();
    }

    if total == 0 {
        eprintln!("rsoc_lint: {audited} files audited, no findings");
        ExitCode::SUCCESS
    } else {
        eprintln!("rsoc_lint: {total} finding(s) across {audited} files");
        ExitCode::from(1)
    }
}
