//! The lint rule engine: per-tier rule catalogs, region tracking, and
//! reasoned suppressions, applied to one lexed source file at a time.
//!
//! # Tiers
//!
//! * [`Tier::ProtocolCore`] — crates on the deterministic-replay path
//!   (`bft`, `hybrid`, `crypto`, `sim`, `noc`, `hw`). All rules apply,
//!   including the determinism catalog.
//! * [`Tier::Harness`] — experiment harnesses and tooling (`bench`,
//!   `soc`, the umbrella crate, this linter). Wall-clock timing and std
//!   hash maps are legitimate there; only the region rules and the
//!   unsafe audit apply.
//!
//! # Region annotations
//!
//! Regions are opened by a line comment and closed by `lint: end`:
//!
//! ```text
//! // lint: ingress
//! fn handle_prepare(&mut self, ...) { ... }
//! // lint: end
//! ```
//!
//! `ingress` regions mark handlers reachable from adversarial input: no
//! `unwrap`/`expect`/`panic!`, and every indexing expression needs a
//! justifying comment on its own or the preceding line. `hot-path`
//! regions mark allocation-free kernels: no `to_vec`/`.clone()`/
//! `Vec::new`/`format!`.
//!
//! # Suppressions
//!
//! `lint: allow(<rule>) -- <reason>` silences `<rule>` on the annotated
//! line (trailing comment) or the next code line (standalone comment).
//! The reason string is mandatory: an allow without one is itself a
//! finding (`allow-no-reason`), as is an allow for a rule that does not
//! exist (`allow-unknown-rule`).

use crate::lexer::{lex, Comment, Tok};
use std::collections::BTreeSet;

/// Which rule catalog applies to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Deterministic protocol/simulation code: every rule applies.
    ProtocolCore,
    /// Harness/tooling code: region rules and the unsafe audit only.
    Harness,
}

/// One diagnostic produced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `det-hashmap`).
    pub rule: &'static str,
    /// 1-based line of the offending token or directive.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

/// Every suppressible rule the engine knows, with a one-line description
/// (the README rule catalog is generated from the same table).
pub const RULES: &[(&str, &str)] = &[
    ("det-hashmap", "std HashMap iteration order is seeded per process; use BTreeMap/OpIndex"),
    ("det-hashset", "std HashSet iteration order is seeded per process; use BTreeSet/ReplicaSet"),
    ("det-systemtime", "wall-clock time in protocol code breaks bit-identical replay"),
    ("det-instant", "monotonic wall-clock time in protocol code breaks bit-identical replay"),
    ("det-thread-rng", "OS-seeded randomness in protocol code breaks bit-identical replay"),
    ("det-ptr-key", "pointer values vary across runs; never use them as keys or hash input"),
    ("ingress-unwrap", "unwrap() reachable from adversarial input is a remote panic"),
    ("ingress-expect", "expect() reachable from adversarial input is a remote panic"),
    ("ingress-panic", "panic!() reachable from adversarial input is a remote panic"),
    ("ingress-index", "indexing in an ingress path needs a bounds-justifying comment"),
    ("hot-to-vec", "to_vec() allocates; hot-path regions are allocation-free"),
    ("hot-clone", ".clone() in a hot-path region (Arc refcounts excepted via allow)"),
    ("hot-vec-new", "Vec::new() in a hot-path region; hoist the allocation out"),
    ("hot-format", "format! allocates; hot-path regions are allocation-free"),
    ("unsafe-no-safety", "every unsafe block needs an adjacent `// SAFETY:` comment"),
];

/// True when `rule` is a known suppressible rule id.
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    Ingress,
    HotPath,
}

#[derive(Debug)]
enum Directive {
    Open(RegionKind),
    End,
    Allow { rule: String, reason_ok: bool },
    Malformed(String),
}

/// Parses the directive in a comment, if any. Only comments whose
/// trimmed text *starts with* `lint:` are directives; doc text merely
/// mentioning the syntax does not qualify.
fn parse_directive(text: &str) -> Option<Directive> {
    let rest = text.trim().strip_prefix("lint:")?.trim();
    if rest == "ingress" {
        return Some(Directive::Open(RegionKind::Ingress));
    }
    if rest == "hot-path" {
        return Some(Directive::Open(RegionKind::HotPath));
    }
    if rest == "end" {
        return Some(Directive::End);
    }
    if let Some(body) = rest.strip_prefix("allow(") {
        let Some(close) = body.find(')') else {
            return Some(Directive::Malformed(rest.to_string()));
        };
        let rule = body[..close].trim().to_string();
        let tail = body[close + 1..].trim();
        let reason_ok = tail.strip_prefix("--").is_some_and(|r| !r.trim().is_empty());
        return Some(Directive::Allow { rule, reason_ok });
    }
    Some(Directive::Malformed(rest.to_string()))
}

/// A closed (or dangling-open) region.
#[derive(Debug)]
struct Region {
    kind: RegionKind,
    /// First line *after* the opening directive.
    from: u32,
    /// Last line before the closing directive (inclusive).
    until: u32,
}

/// Identifier keywords that can legitimately precede a `[` without the
/// bracket being an index expression (`for x in [..]`, `return [..]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "dyn", "else", "enum", "fn", "for", "if", "impl",
    "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct",
    "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Runs every applicable rule over `src`, returning findings sorted by
/// line. `src` is lexed internally; the engine never panics on malformed
/// input (the linter must survive any file it audits).
pub fn lint_source(src: &str, tier: Tier) -> Vec<Finding> {
    let lexed = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();

    let mut findings: Vec<Finding> = Vec::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut open: Vec<(RegionKind, u32)> = Vec::new();
    // (line, rule) pairs silenced by a reasoned allow.
    let mut allows: BTreeSet<(u32, String)> = BTreeSet::new();

    for c in &lexed.comments {
        match parse_directive(&c.text) {
            None => {}
            Some(Directive::Open(kind)) => open.push((kind, c.line + 1)),
            Some(Directive::End) => match open.pop() {
                Some((kind, from)) => {
                    regions.push(Region { kind, from, until: c.line.saturating_sub(1) })
                }
                None => findings.push(Finding {
                    rule: "lint-directive",
                    line: c.line,
                    msg: "`lint: end` without an open region".to_string(),
                }),
            },
            Some(Directive::Allow { rule, reason_ok }) => {
                if !known_rule(&rule) {
                    findings.push(Finding {
                        rule: "allow-unknown-rule",
                        line: c.line,
                        msg: format!("allow for unknown rule `{rule}`"),
                    });
                } else if !reason_ok {
                    findings.push(Finding {
                        rule: "allow-no-reason",
                        line: c.line,
                        msg: format!(
                            "allow({rule}) needs a reason: `lint: allow({rule}) -- <why>`"
                        ),
                    });
                } else {
                    let target = if c.trailing {
                        Some(c.line)
                    } else {
                        // Standalone: annotates the next code line.
                        code_lines.range(c.line + 1..).next().copied()
                    };
                    if let Some(line) = target {
                        allows.insert((line, rule));
                    }
                }
            }
            Some(Directive::Malformed(what)) => findings.push(Finding {
                rule: "lint-directive",
                line: c.line,
                msg: format!("unrecognized lint directive `{what}`"),
            }),
        }
    }
    for (kind, from) in open {
        regions.push(Region { kind, from, until: u32::MAX });
        findings.push(Finding {
            rule: "lint-directive",
            line: from.saturating_sub(1),
            msg: "region is never closed with `lint: end`".to_string(),
        });
    }

    let in_region = |line: u32, kind: RegionKind| {
        regions.iter().any(|r| r.kind == kind && line >= r.from && line <= r.until)
    };
    let mut emit = |rule: &'static str, line: u32, msg: String| {
        if !allows.contains(&(line, rule.to_string())) {
            findings.push(Finding { rule, line, msg });
        }
    };

    let toks = &lexed.tokens;
    let ident_at = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct_at = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    };

    for (i, t) in toks.iter().enumerate() {
        let line = t.line;
        match &t.tok {
            Tok::Ident(name) => {
                if tier == Tier::ProtocolCore {
                    let det = match name.as_str() {
                        "HashMap" => Some("det-hashmap"),
                        "HashSet" => Some("det-hashset"),
                        "SystemTime" => Some("det-systemtime"),
                        "Instant" => Some("det-instant"),
                        "thread_rng" => Some("det-thread-rng"),
                        _ => None,
                    };
                    if let Some(rule) = det {
                        emit(rule, line, format!("`{name}` in protocol-core code: {}", doc(rule)));
                    }
                    // `as_ptr() as <integer>` turns an address into a
                    // value; `as *const T` (re-typing for an intrinsic)
                    // stays a pointer and is fine.
                    if name == "as_ptr"
                        && punct_at(i + 1) == Some('(')
                        && punct_at(i + 2) == Some(')')
                        && ident_at(i + 3) == Some("as")
                        && matches!(
                            ident_at(i + 4),
                            Some("usize" | "u64" | "u32" | "u128" | "isize" | "i64")
                        )
                    {
                        emit(
                            "det-ptr-key",
                            line,
                            "pointer cast to an integer in protocol-core code".to_string(),
                        );
                    }
                }
                if name == "unsafe" && !has_safety_comment(&lines, line) {
                    emit(
                        "unsafe-no-safety",
                        line,
                        "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                    );
                }
                let dotted = punct_at(i.wrapping_sub(1)) == Some('.') && i > 0;
                if in_region(line, RegionKind::Ingress) {
                    if dotted && name == "unwrap" {
                        emit("ingress-unwrap", line, "unwrap() in an ingress path".to_string());
                    }
                    if dotted && name == "expect" {
                        emit("ingress-expect", line, "expect() in an ingress path".to_string());
                    }
                    if name == "panic" && punct_at(i + 1) == Some('!') {
                        emit("ingress-panic", line, "panic!() in an ingress path".to_string());
                    }
                }
                if in_region(line, RegionKind::HotPath) {
                    if dotted && name == "to_vec" {
                        emit("hot-to-vec", line, "to_vec() in a hot-path region".to_string());
                    }
                    if dotted && name == "clone" {
                        emit("hot-clone", line, ".clone() in a hot-path region".to_string());
                    }
                    if name == "Vec"
                        && punct_at(i + 1) == Some(':')
                        && punct_at(i + 2) == Some(':')
                        && ident_at(i + 3) == Some("new")
                    {
                        emit("hot-vec-new", line, "Vec::new() in a hot-path region".to_string());
                    }
                    if name == "format" && punct_at(i + 1) == Some('!') {
                        emit("hot-format", line, "format! in a hot-path region".to_string());
                    }
                }
            }
            Tok::Punct('[') if in_region(line, RegionKind::Ingress) && i > 0 => {
                let indexes = match &toks[i - 1].tok {
                    Tok::Ident(prev) => !NON_INDEX_KEYWORDS.contains(&prev.as_str()),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if indexes && !has_justifying_comment(&lexed.comments, line) {
                    emit(
                        "ingress-index",
                        line,
                        "indexing in an ingress path without a justifying comment".to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

fn doc(rule: &str) -> &'static str {
    RULES.iter().find(|(id, _)| *id == rule).map(|(_, d)| *d).unwrap_or("")
}

/// True when the indexing expression on `line` carries a comment on the
/// same line or on the line directly above it (which is how the
/// bounds justification is written). Lint directives themselves are not
/// justification.
fn has_justifying_comment(comments: &[Comment], line: u32) -> bool {
    comments
        .iter()
        .filter(|c| parse_directive(&c.text).is_none())
        .any(|c| c.line == line || (!c.trailing && c.line + 1 == line))
}

/// True when an `unsafe` on `line` (1-based) has a SAFETY comment on the
/// same line or within the contiguous comment/attribute block above it.
/// `/// # Safety` doc headings count: rustdoc already standardizes them
/// for unsafe fns, and the audit accepts either spelling.
fn has_safety_comment(lines: &[&str], line: u32) -> bool {
    let here = lines.get(line as usize - 1).copied().unwrap_or("");
    if here.to_ascii_lowercase().contains("safety") {
        return true;
    }
    // Scan upward through comments, attributes, and blanks (bounded so a
    // pathological file cannot make this quadratic).
    let mut l = line as usize - 1;
    for _ in 0..24 {
        if l == 0 {
            break;
        }
        l -= 1;
        let t = lines.get(l).copied().unwrap_or("").trim_start();
        let comment_ish = t.is_empty()
            || t.starts_with("//")
            || t.starts_with("/*")
            || t.starts_with('*')
            || t.starts_with('#')
            || t.starts_with(')')
            || t.starts_with(']');
        if !comment_ish {
            return false;
        }
        if t.to_ascii_lowercase().contains("safety") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<(&'static str, u32)> {
        findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn determinism_rules_fire_only_in_protocol_core() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        let core = lint_source(src, Tier::ProtocolCore);
        assert_eq!(rules_of(&core), vec![("det-hashmap", 1), ("det-instant", 2)]);
        assert!(lint_source(src, Tier::Harness).is_empty(), "harness tier may use wall clocks");
    }

    #[test]
    fn mentions_in_strings_and_comments_do_not_fire() {
        let src = "// HashMap would be wrong here\nlet s = \"Instant::now()\";\n";
        assert!(lint_source(src, Tier::ProtocolCore).is_empty());
    }

    #[test]
    fn ptr_key_needs_the_integer_cast() {
        let flagged = "let k = v.as_ptr() as usize;\n";
        assert_eq!(rules_of(&lint_source(flagged, Tier::ProtocolCore)), vec![("det-ptr-key", 1)]);
        // Passing a pointer to an intrinsic is not key material.
        let ok = "let p = unsafe { load(block.as_ptr()) }; // SAFETY: len checked\n";
        assert!(lint_source(ok, Tier::ProtocolCore).is_empty());
        // Re-typing a pointer keeps it a pointer; only integer casts leak
        // address identity into values.
        let retype = "// SAFETY: block is 16 bytes\nlet p = unsafe { loadu(block.as_ptr() as *const M128) };\n";
        assert!(lint_source(retype, Tier::ProtocolCore).is_empty());
    }

    #[test]
    fn ingress_rules_only_inside_regions() {
        let outside = "fn setup() { x.unwrap(); }\n";
        assert!(lint_source(outside, Tier::ProtocolCore).is_empty());
        let inside = "// lint: ingress\nfn h(&mut self) {\n  x.unwrap();\n  y.expect(\"m\");\n  panic!(\"boom\");\n}\n// lint: end\nfn after() { z.unwrap(); }\n";
        assert_eq!(
            rules_of(&lint_source(inside, Tier::ProtocolCore)),
            vec![("ingress-unwrap", 3), ("ingress-expect", 4), ("ingress-panic", 5)]
        );
    }

    #[test]
    fn ingress_indexing_needs_a_comment() {
        let bare = "// lint: ingress\nfn h() { let v = slots[i]; }\n// lint: end\n";
        assert_eq!(rules_of(&lint_source(bare, Tier::ProtocolCore)), vec![("ingress-index", 2)]);
        let trailing =
            "// lint: ingress\nfn h() { let v = slots[i]; } // bounds: i < n checked above\n// lint: end\n";
        assert!(lint_source(trailing, Tier::ProtocolCore).is_empty());
        let above =
            "// lint: ingress\nfn h() {\n  // bounds: i validated by caller\n  let v = slots[i];\n}\n// lint: end\n";
        assert!(lint_source(above, Tier::ProtocolCore).is_empty());
        // Macro brackets and array types are not index expressions.
        let benign = "// lint: ingress\nfn h() -> [u8; 4] { vec![1, 2]; for _x in [1, 2] {} [0; 4] }\n// lint: end\n";
        assert!(lint_source(benign, Tier::ProtocolCore).is_empty());
    }

    #[test]
    fn hot_path_rules() {
        let src = "// lint: hot-path\nfn k(&mut self) {\n  let a = xs.to_vec();\n  let b = m.clone();\n  let c: Vec<u8> = Vec::new();\n  let d = format!(\"{a}\");\n}\n// lint: end\n";
        assert_eq!(
            rules_of(&lint_source(src, Tier::ProtocolCore)),
            vec![("hot-to-vec", 3), ("hot-clone", 4), ("hot-vec-new", 5), ("hot-format", 6)]
        );
        // Vec::with_capacity is the sanctioned spelling.
        let ok =
            "// lint: hot-path\nfn k() { let v: Vec<u8> = Vec::with_capacity(8); }\n// lint: end\n";
        assert!(lint_source(ok, Tier::ProtocolCore).is_empty());
    }

    #[test]
    fn unsafe_audit_accepts_adjacent_safety_comments() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(rules_of(&lint_source(bad, Tier::Harness)), vec![("unsafe-no-safety", 1)]);
        let good = "// SAFETY: checked above\nunsafe { go() }\n";
        assert!(lint_source(good, Tier::Harness).is_empty());
        // Doc-style `# Safety` heading above attributes also counts.
        let doc = "/// Does things.\n///\n/// # Safety\n/// Caller must check CPU features.\n#[target_feature(enable = \"sha\")]\npub unsafe fn compress() {}\n";
        assert!(lint_source(doc, Tier::ProtocolCore).is_empty());
        // A SAFETY comment does not leak past intervening code.
        let stale = "// SAFETY: for the first block\nlet a = 1;\nfn g() { unsafe { go() } }\n";
        assert_eq!(rules_of(&lint_source(stale, Tier::Harness)), vec![("unsafe-no-safety", 3)]);
    }

    #[test]
    fn reasoned_allows_silence_standalone_and_trailing() {
        let trailing = "use std::collections::HashMap; // lint: allow(det-hashmap) -- build-time only, iteration never observed\n";
        assert!(lint_source(trailing, Tier::ProtocolCore).is_empty());
        let standalone = "// lint: allow(det-hashmap) -- build-time only, iteration never observed\nuse std::collections::HashMap;\n";
        assert!(lint_source(standalone, Tier::ProtocolCore).is_empty());
        // The allow is line-scoped: a second violation still fires.
        let second = "// lint: allow(det-hashmap) -- first use only\nuse std::collections::HashMap;\ntype M = HashMap<u32, u32>;\n";
        assert_eq!(rules_of(&lint_source(second, Tier::ProtocolCore)), vec![("det-hashmap", 3)]);
    }

    #[test]
    fn allows_require_reason_and_known_rule() {
        let no_reason = "x.unwrap(); // lint: allow(ingress-unwrap)\n";
        assert_eq!(rules_of(&lint_source(no_reason, Tier::Harness)), vec![("allow-no-reason", 1)]);
        let dashes_only = "x.unwrap(); // lint: allow(ingress-unwrap) --\n";
        assert_eq!(
            rules_of(&lint_source(dashes_only, Tier::Harness)),
            vec![("allow-no-reason", 1)]
        );
        let unknown = "// lint: allow(no-such-rule) -- because\nlet a = 1;\n";
        assert_eq!(rules_of(&lint_source(unknown, Tier::Harness)), vec![("allow-unknown-rule", 1)]);
    }

    #[test]
    fn malformed_directives_are_reported() {
        let src = "// lint: ingress\nfn f() {}\n// lint: done\n";
        let f = lint_source(src, Tier::Harness);
        assert!(f.iter().any(|f| f.rule == "lint-directive" && f.line == 3), "{f:?}");
        assert!(f.iter().any(|f| f.msg.contains("never closed")), "{f:?}");
        let stray = "// lint: end\n";
        assert_eq!(rules_of(&lint_source(stray, Tier::Harness)), vec![("lint-directive", 1)]);
    }

    #[test]
    fn doc_text_mentioning_directives_is_inert() {
        let src =
            "//! Regions open with `// lint: ingress` and close with `// lint: end`.\nfn f() {}\n";
        assert!(lint_source(src, Tier::Harness).is_empty());
    }

    #[test]
    fn rule_table_is_consistent() {
        assert!(known_rule("det-hashmap"));
        assert!(!known_rule("det-hash"));
        let mut ids: Vec<&str> = RULES.iter().map(|(id, _)| *id).collect();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate rule ids");
    }
}
