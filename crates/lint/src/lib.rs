//! `rsoc_lint` — the workspace-aware static-analysis pass that enforces
//! the contracts every result in this reproduction rests on:
//!
//! * **determinism** — no seeded-per-process containers, wall clocks, or
//!   OS randomness in protocol-core crates (bit-identical replay of the
//!   scenario oracle and sweep JSON is asserted in CI);
//! * **panic safety** — handlers reachable from adversarial input
//!   (marked `// lint: ingress`) must not contain a remote panic;
//! * **hot-path allocation discipline** — kernels marked
//!   `// lint: hot-path` stay allocation-free;
//! * **unsafe audit** — every `unsafe` carries an adjacent `// SAFETY:`
//!   justification.
//!
//! The pass is three small layers with no external dependencies (the
//! vendored workspace cannot pull in `syn`): a hand-written Rust
//! [lexer], a workspace [walker](walk) that
//! classifies crates by tier, and the [rule engine](rules) with
//! region annotations and reasoned `lint: allow(<rule>) -- <reason>`
//! suppressions. See the README "Static analysis" section for the full
//! rule catalog.

pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{known_rule, lint_source, Finding, Tier, RULES};
pub use walk::{classify, collect, SourceFile, PROTOCOL_CORE_CRATES};
