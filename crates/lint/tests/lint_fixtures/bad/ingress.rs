// Fixture: every ingress rule fires inside the region, none outside.
fn outside(x: Option<u32>) -> u32 {
    x.unwrap()
}

// lint: ingress
fn handle(xs: &[u32], x: Option<u32>, i: usize) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a + b == 0 {
        panic!("unreachable input");
    }
    xs[i]
}
// lint: end

fn after(x: Option<u32>) -> u32 {
    x.unwrap()
}
