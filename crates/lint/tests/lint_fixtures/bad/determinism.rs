// Fixture: every determinism rule, one per line (tier: protocol-core).
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::SystemTime;
use std::time::Instant;

fn seeded() -> u64 {
    let rng = rand::thread_rng();
    let key = rng.as_ptr() as usize;
    key as u64
}
