// Fixture: every hot-path rule fires inside the region, none outside.
fn setup(xs: &[u8]) -> Vec<u8> {
    xs.to_vec()
}

// lint: hot-path
fn kernel(xs: &[u8], m: &State) -> usize {
    let a = xs.to_vec();
    let b = m.clone();
    let c: Vec<u8> = Vec::new();
    let d = format!("{}", xs.len());
    a.len() + b.len() + c.len() + d.len()
}
// lint: end
