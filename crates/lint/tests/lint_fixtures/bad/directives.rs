// Fixture: the directive meta-rules.
// lint: allow(ingress-unwrap)
fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap()
}

// lint: allow(no-such-rule) -- a reason for a rule that does not exist
fn unknown() {}

// lint: frobnicate
fn malformed() {}

// lint: end
fn stray() {}
