// Fixture: an unsafe block with no adjacent SAFETY comment.
fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}
