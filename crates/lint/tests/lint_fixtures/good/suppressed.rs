// Fixture: every violation from the bad/ set, silenced the sanctioned way.
// lint: allow(det-hashmap) -- build-time table, iteration order never observed
use std::collections::HashMap;

// lint: ingress
fn handle(xs: &[u32], x: Option<u32>, i: usize) -> u32 {
    // lint: allow(ingress-unwrap) -- caller checked is_some() on this arm
    let a = x.unwrap();
    let b = x.expect("present"); // lint: allow(ingress-expect) -- invariant: set during init
    // bounds: i comes from enumerate() over xs
    let c = xs[i];
    a + b + c
}
// lint: end

// lint: hot-path
fn kernel(arc: &Handle) -> Handle {
    // lint: allow(hot-clone) -- Arc refcount bump, not a deep copy
    arc.clone()
}
// lint: end

fn documented(p: *const u8) -> u8 {
    // SAFETY: p is non-null and aligned; the caller upholds the contract.
    unsafe { *p }
}
