// Fixture: region rules stay scoped — the same calls outside any region
// (or in literals and doc text) are clean.
//! Doc text may mention `// lint: ingress` or HashMap without firing.

fn outside(x: Option<u32>, xs: &[u8]) -> Vec<u8> {
    let _ = x.unwrap();
    let s = "use std::collections::HashMap; Instant::now()";
    let _ = format!("{s}");
    xs.to_vec()
}
