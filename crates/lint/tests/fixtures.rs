//! Fixture-driven self-tests: every rule in the catalog is proven to fire
//! at an exact `(rule, line)` position on a seeded violation, and every
//! sanctioned silencing mechanism (reasoned allow, bounds comment, SAFETY
//! comment, region scoping) is proven to silence it.

use rsoc_lint::{collect, lint_source, Tier};
use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn findings(name: &str, tier: Tier) -> Vec<(&'static str, u32)> {
    lint_source(&fixture(name), tier).iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn determinism_fixture_fires_every_rule_at_exact_lines() {
    assert_eq!(
        findings("bad/determinism.rs", Tier::ProtocolCore),
        vec![
            ("det-hashmap", 2),
            ("det-hashset", 3),
            ("det-systemtime", 4),
            ("det-instant", 5),
            ("det-thread-rng", 8),
            ("det-ptr-key", 9),
        ]
    );
    // The same file is clean at harness tier: the determinism catalog is
    // protocol-core-only.
    assert_eq!(findings("bad/determinism.rs", Tier::Harness), vec![]);
}

#[test]
fn ingress_fixture_fires_inside_the_region_only() {
    assert_eq!(
        findings("bad/ingress.rs", Tier::ProtocolCore),
        vec![
            ("ingress-unwrap", 8),
            ("ingress-expect", 9),
            ("ingress-panic", 11),
            ("ingress-index", 13),
        ]
    );
}

#[test]
fn hotpath_fixture_fires_inside_the_region_only() {
    assert_eq!(
        findings("bad/hotpath.rs", Tier::ProtocolCore),
        vec![("hot-to-vec", 8), ("hot-clone", 9), ("hot-vec-new", 10), ("hot-format", 11)]
    );
}

#[test]
fn unsafe_fixture_fires_without_a_safety_comment() {
    // The unsafe audit applies at both tiers.
    assert_eq!(findings("bad/unsafe_block.rs", Tier::ProtocolCore), vec![("unsafe-no-safety", 3)]);
    assert_eq!(findings("bad/unsafe_block.rs", Tier::Harness), vec![("unsafe-no-safety", 3)]);
}

#[test]
fn directive_fixture_fires_the_meta_rules() {
    assert_eq!(
        findings("bad/directives.rs", Tier::ProtocolCore),
        vec![
            ("allow-no-reason", 2),
            ("allow-unknown-rule", 7),
            ("lint-directive", 10),
            ("lint-directive", 13),
        ]
    );
}

#[test]
fn good_fixtures_are_silent_at_the_strictest_tier() {
    assert_eq!(findings("good/suppressed.rs", Tier::ProtocolCore), vec![]);
    assert_eq!(findings("good/regions.rs", Tier::ProtocolCore), vec![]);
}

#[test]
fn walker_skips_the_fixture_tree_but_force_tier_collects_it() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures");
    // Forced collection (what the CI seeded-violation step runs) sees every
    // fixture file, deterministically ordered.
    let files = collect(&fixtures, Some(Tier::ProtocolCore)).expect("collect fixtures");
    let mut names: Vec<String> =
        files.iter().map(|f| f.path.file_name().unwrap().to_string_lossy().into_owned()).collect();
    assert_eq!(files.len(), 7, "{names:?}");
    names.sort();
    assert!(names.contains(&"determinism.rs".to_string()));
    // The workspace walk never descends into lint_fixtures/ (the seeded
    // violations must not fail the real audit).
    let crate_root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let own = collect(crate_root, None).expect("collect crate");
    assert!(own.iter().all(|f| !f.path.components().any(|c| c.as_os_str() == "lint_fixtures")));
}

#[test]
fn binary_exits_nonzero_on_the_seeded_fixture_violations() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures/bad");
    let out = Command::new(env!("CARGO_BIN_EXE_rsoc_lint"))
        .args(["--root", fixtures.to_str().unwrap(), "--tier", "protocol-core"])
        .output()
        .expect("spawn rsoc_lint");
    assert_eq!(out.status.code(), Some(1), "seeded violations must fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[det-hashmap]"), "{stdout}");
    assert!(stdout.contains("[ingress-unwrap]"), "{stdout}");

    let good = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures/good");
    let out = Command::new(env!("CARGO_BIN_EXE_rsoc_lint"))
        .args(["--root", good.to_str().unwrap(), "--tier", "protocol-core"])
        .output()
        .expect("spawn rsoc_lint");
    assert_eq!(out.status.code(), Some(0), "suppressed fixtures must pass");
}
