//! Closed-form hop latency model.
//!
//! Protocol-level experiments (E3, E4, E7) need per-message latencies, not
//! flit traces. This model prices a message as
//! `router_overhead + per_hop * manhattan_distance + payload_words * serialization`,
//! which matches the uncongested behaviour of [`crate::network::Network`]
//! (verified by a cross-validation test below).

use crate::topology::{Mesh2d, NodeId};

/// Latency model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopLatencyModel {
    /// Fixed source+sink overhead in cycles.
    pub router_overhead: u64,
    /// Cycles per mesh hop.
    pub per_hop: u64,
    /// Cycles per payload word (serialization).
    pub per_word: u64,
}

impl Default for HopLatencyModel {
    fn default() -> Self {
        // per_hop=1 matches NetworkConfig::default(); 2-cycle endpoint cost.
        HopLatencyModel { router_overhead: 2, per_hop: 1, per_word: 1 }
    }
}

impl HopLatencyModel {
    /// Latency of a `words`-word message from `src` to `dst` on `mesh`.
    pub fn latency(&self, mesh: &Mesh2d, src: NodeId, dst: NodeId, words: u32) -> u64 {
        if src == dst {
            return self.router_overhead / 2; // local loopback
        }
        self.router_overhead
            + self.per_hop * mesh.hops(src, dst) as u64
            + self.per_word * words as u64
    }

    /// Worst-case latency across the mesh diameter for a `words`-word message.
    pub fn diameter_latency(&self, mesh: &Mesh2d, words: u32) -> u64 {
        let diameter = (mesh.width() - 1 + mesh.height() - 1) as u64;
        self.router_overhead + self.per_hop * diameter + self.per_word * words as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, NetworkConfig};

    #[test]
    fn latency_scales_with_distance_and_size() {
        let mesh = Mesh2d::new(8, 8);
        let m = HopLatencyModel::default();
        let a = mesh.node_at(0, 0).unwrap();
        let b = mesh.node_at(1, 0).unwrap();
        let c = mesh.node_at(7, 7).unwrap();
        assert!(m.latency(&mesh, a, b, 1) < m.latency(&mesh, a, c, 1));
        assert!(m.latency(&mesh, a, b, 1) < m.latency(&mesh, a, b, 16));
        assert_eq!(m.latency(&mesh, a, a, 4), 1);
    }

    #[test]
    fn diameter_is_upper_bound() {
        let mesh = Mesh2d::new(8, 8);
        let m = HopLatencyModel::default();
        let worst = m.diameter_latency(&mesh, 4);
        for x in 0..8 {
            for y in 0..8 {
                let n = mesh.node_at(x, y).unwrap();
                let far = mesh.node_at(7 - x, 7 - y).unwrap();
                assert!(m.latency(&mesh, n, far, 4) <= worst);
            }
        }
    }

    #[test]
    fn model_matches_uncongested_network_hops() {
        // Cross-validate: with zero overhead/serialization the model's hop
        // term equals the packet network's uncongested latency.
        let mesh = Mesh2d::new(6, 6);
        let model = HopLatencyModel { router_overhead: 0, per_hop: 1, per_word: 0 };
        let mut net = Network::new(mesh, NetworkConfig::default());
        let src = mesh.node_at(0, 2).unwrap();
        let dst = mesh.node_at(5, 4).unwrap();
        net.inject(src, dst, 1);
        net.drain(1000);
        let measured = net.stats().delivered[0].latency;
        assert_eq!(measured, model.latency(&mesh, src, dst, 0));
    }
}
