//! Synthetic traffic patterns for NoC load experiments.

use crate::topology::{Mesh2d, NodeId};
use rsoc_sim::SimRng;

/// Classic NoC traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Each source picks a uniformly random destination (≠ itself).
    UniformRandom,
    /// Node (x, y) sends to (y, x). Requires a square mesh.
    Transpose,
    /// Node (x, y) sends to (w-1-x, h-1-y).
    BitComplement,
    /// All nodes send to one hotspot node.
    Hotspot(NodeId),
}

impl TrafficPattern {
    /// Destination for `src` under this pattern.
    ///
    /// # Panics
    /// Panics for [`TrafficPattern::Transpose`] on a non-square mesh.
    pub fn destination(&self, mesh: &Mesh2d, src: NodeId, rng: &mut SimRng) -> NodeId {
        match self {
            TrafficPattern::UniformRandom => loop {
                let d = NodeId(rng.below(mesh.node_count() as u64) as u16);
                if d != src {
                    return d;
                }
            },
            TrafficPattern::Transpose => {
                assert_eq!(mesh.width(), mesh.height(), "transpose needs a square mesh");
                let c = mesh.coord(src);
                mesh.node_at(c.y, c.x).expect("square mesh")
            }
            TrafficPattern::BitComplement => {
                let c = mesh.coord(src);
                mesh.node_at(mesh.width() - 1 - c.x, mesh.height() - 1 - c.y)
                    .expect("complement stays in mesh")
            }
            TrafficPattern::Hotspot(dst) => *dst,
        }
    }

    /// Generates `count` (src, dst) pairs: sources round-robin over the
    /// mesh, destinations per the pattern.
    pub fn generate(&self, mesh: &Mesh2d, count: usize, rng: &mut SimRng) -> Vec<(NodeId, NodeId)> {
        let nodes: Vec<NodeId> = mesh.nodes().collect();
        (0..count)
            .map(|i| {
                let src = nodes[i % nodes.len()];
                let dst = self.destination(mesh, src, rng);
                (src, dst)
            })
            .filter(|(s, d)| s != d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_self() {
        let mesh = Mesh2d::new(4, 4);
        let mut rng = SimRng::new(1);
        for node in mesh.nodes() {
            for _ in 0..20 {
                assert_ne!(TrafficPattern::UniformRandom.destination(&mesh, node, &mut rng), node);
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = Mesh2d::new(4, 4);
        let mut rng = SimRng::new(2);
        let src = mesh.node_at(1, 3).unwrap();
        let dst = TrafficPattern::Transpose.destination(&mesh, src, &mut rng);
        assert_eq!(mesh.coord(dst).x, 3);
        assert_eq!(mesh.coord(dst).y, 1);
    }

    #[test]
    fn complement_mirrors() {
        let mesh = Mesh2d::new(4, 2);
        let mut rng = SimRng::new(3);
        let src = mesh.node_at(0, 0).unwrap();
        let dst = TrafficPattern::BitComplement.destination(&mesh, src, &mut rng);
        assert_eq!(mesh.coord(dst).x, 3);
        assert_eq!(mesh.coord(dst).y, 1);
    }

    #[test]
    fn hotspot_targets_fixed_node() {
        let mesh = Mesh2d::new(3, 3);
        let hs = mesh.node_at(1, 1).unwrap();
        let mut rng = SimRng::new(4);
        let pairs = TrafficPattern::Hotspot(hs).generate(&mesh, 20, &mut rng);
        assert!(pairs.iter().all(|(_, d)| *d == hs));
        // The hotspot node itself is filtered out as a source.
        assert!(pairs.iter().all(|(s, _)| *s != hs));
    }

    #[test]
    fn generate_round_robins_sources() {
        let mesh = Mesh2d::new(2, 2);
        let mut rng = SimRng::new(5);
        let pairs = TrafficPattern::UniformRandom.generate(&mesh, 8, &mut rng);
        assert_eq!(pairs.len(), 8);
        let firsts: Vec<u16> = pairs.iter().take(4).map(|(s, _)| s.0).collect();
        assert_eq!(firsts, vec![0, 1, 2, 3]);
    }
}
