//! End-to-end retransmission over the unreliable packet network.
//!
//! XY routing drops packets at dead links; a source-side timeout/retry layer
//! recovers deliveries at a latency cost. E10 compares plain XY, XY+retry,
//! and fault-adaptive routing.

use crate::network::{Network, PacketId};
use crate::topology::NodeId;
use std::collections::BTreeMap;

/// One logical message tracked by the retransmission layer.
#[derive(Debug, Clone)]
struct Outstanding {
    src: NodeId,
    dst: NodeId,
    first_sent: u64,
    sent_at: u64,
    attempts: u32,
    current: PacketId,
}

/// Outcome of a completed logical message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageOutcome {
    /// Logical message id (caller-assigned).
    pub message: u64,
    /// Whether the message was ultimately delivered.
    pub delivered: bool,
    /// Attempts used (1 = no retransmission needed).
    pub attempts: u32,
    /// End-to-end latency in cycles from first send to delivery (0 if lost).
    pub latency: u64,
}

/// Source-side retransmission controller over a [`Network`].
///
/// The controller observes the network's delivery/drop records each cycle —
/// standing in for an acknowledgment channel. Retransmission triggers on
/// either an observed drop or a timeout.
#[derive(Debug)]
pub struct Retransmitter {
    timeout: u64,
    max_attempts: u32,
    outstanding: BTreeMap<u64, Outstanding>,
    packet_to_message: BTreeMap<PacketId, u64>,
    outcomes: Vec<MessageOutcome>,
    next_message: u64,
    processed_deliveries: usize,
    processed_drops: usize,
}

impl Retransmitter {
    /// Creates a controller with the given retry timeout (cycles) and
    /// attempt budget.
    ///
    /// # Panics
    /// Panics if `max_attempts == 0`.
    pub fn new(timeout: u64, max_attempts: u32) -> Self {
        assert!(max_attempts > 0, "need at least one attempt");
        Retransmitter {
            timeout,
            max_attempts,
            outstanding: BTreeMap::new(),
            packet_to_message: BTreeMap::new(),
            outcomes: Vec::new(),
            next_message: 0,
            processed_deliveries: 0,
            processed_drops: 0,
        }
    }

    /// Sends a logical message; returns its id.
    pub fn send(&mut self, net: &mut Network, src: NodeId, dst: NodeId) -> u64 {
        let message = self.next_message;
        self.next_message += 1;
        let packet = net.inject(src, dst, 1);
        let now = net.now();
        self.packet_to_message.insert(packet, message);
        self.outstanding.insert(
            message,
            Outstanding { src, dst, first_sent: now, sent_at: now, attempts: 1, current: packet },
        );
        // inject() delivers src==dst immediately; harvest so the message resolves.
        self.harvest(net);
        message
    }

    /// Processes new network events and fires due retransmissions.
    /// Call once per simulation cycle, after `net.tick()`.
    pub fn harvest(&mut self, net: &mut Network) {
        // New deliveries.
        let deliveries: Vec<(PacketId, u64)> = net.stats().delivered[self.processed_deliveries..]
            .iter()
            .map(|d| (d.packet, d.at))
            .collect();
        self.processed_deliveries = net.stats().delivered.len();
        for (packet, at) in deliveries {
            if let Some(message) = self.packet_to_message.remove(&packet) {
                if let Some(o) = self.outstanding.remove(&message) {
                    self.outcomes.push(MessageOutcome {
                        message,
                        delivered: true,
                        attempts: o.attempts,
                        latency: at - o.first_sent,
                    });
                }
            }
        }
        // New drops → immediate retry (the "ack channel" reports loss).
        let drops: Vec<PacketId> =
            net.stats().dropped[self.processed_drops..].iter().map(|d| d.packet).collect();
        self.processed_drops = net.stats().dropped.len();
        for packet in drops {
            if let Some(message) = self.packet_to_message.remove(&packet) {
                self.retry(net, message);
            }
        }
        // Timeouts.
        let now = net.now();
        let due: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| now.saturating_sub(o.sent_at) >= self.timeout)
            .map(|(m, _)| *m)
            .collect();
        for message in due {
            if let Some(o) = self.outstanding.get(&message) {
                self.packet_to_message.remove(&o.current);
            }
            self.retry(net, message);
        }
    }

    fn retry(&mut self, net: &mut Network, message: u64) {
        let Some(o) = self.outstanding.get_mut(&message) else { return };
        if o.attempts >= self.max_attempts {
            let o = self.outstanding.remove(&message).expect("present");
            self.outcomes.push(MessageOutcome {
                message,
                delivered: false,
                attempts: o.attempts,
                latency: 0,
            });
            return;
        }
        o.attempts += 1;
        o.sent_at = net.now();
        let packet = net.inject(o.src, o.dst, 1);
        o.current = packet;
        self.packet_to_message.insert(packet, message);
    }

    /// Messages still awaiting resolution.
    pub fn pending(&self) -> usize {
        self.outstanding.len()
    }

    /// Completed message outcomes.
    pub fn outcomes(&self) -> &[MessageOutcome] {
        &self.outcomes
    }

    /// Fraction of resolved messages that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.outcomes.iter().filter(|o| o.delivered).count() as f64 / self.outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::topology::{Direction, LinkId, Mesh2d};

    fn run(net: &mut Network, rt: &mut Retransmitter, cycles: u64) {
        for _ in 0..cycles {
            net.tick();
            rt.harvest(net);
            if rt.pending() == 0 {
                break;
            }
        }
    }

    #[test]
    fn clean_network_single_attempt() {
        let mut net = Network::new(Mesh2d::new(4, 4), NetworkConfig::default());
        let mut rt = Retransmitter::new(50, 3);
        let s = net.mesh().node_at(0, 0).unwrap();
        let d = net.mesh().node_at(3, 3).unwrap();
        rt.send(&mut net, s, d);
        run(&mut net, &mut rt, 500);
        assert_eq!(rt.outcomes().len(), 1);
        let o = rt.outcomes()[0];
        assert!(o.delivered);
        assert_eq!(o.attempts, 1);
        assert_eq!(o.latency, 6);
    }

    #[test]
    fn retry_recovers_after_link_repair() {
        let mut net = Network::new(Mesh2d::new(4, 1), NetworkConfig::default());
        let s = net.mesh().node_at(0, 0).unwrap();
        let d = net.mesh().node_at(3, 0).unwrap();
        let mid = net.mesh().node_at(1, 0).unwrap();
        let link = LinkId { from: mid, dir: Direction::East.into() };
        net.kill_link(link);
        let mut rt = Retransmitter::new(50, 5);
        rt.send(&mut net, s, d);
        // First attempt hits the dead link and is dropped; revive before retry resolves.
        for _ in 0..3 {
            net.tick();
            rt.harvest(&mut net);
        }
        net.revive_link(link);
        run(&mut net, &mut rt, 500);
        assert_eq!(rt.outcomes().len(), 1);
        let o = rt.outcomes()[0];
        assert!(o.delivered, "retry after repair must succeed");
        assert!(o.attempts >= 2);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut net = Network::new(Mesh2d::new(4, 1), NetworkConfig::default());
        let s = net.mesh().node_at(0, 0).unwrap();
        let d = net.mesh().node_at(3, 0).unwrap();
        net.kill_link(LinkId { from: s, dir: Direction::East.into() });
        let mut rt = Retransmitter::new(10, 3);
        rt.send(&mut net, s, d);
        run(&mut net, &mut rt, 1000);
        assert_eq!(rt.outcomes().len(), 1);
        let o = rt.outcomes()[0];
        assert!(!o.delivered);
        assert_eq!(o.attempts, 3);
        assert_eq!(rt.delivery_ratio(), 0.0);
    }

    #[test]
    fn self_send_resolves_immediately() {
        let mut net = Network::new(Mesh2d::new(2, 2), NetworkConfig::default());
        let mut rt = Retransmitter::new(10, 3);
        let a = net.mesh().node_at(0, 0).unwrap();
        rt.send(&mut net, a, a);
        assert_eq!(rt.pending(), 0);
        assert!(rt.outcomes()[0].delivered);
    }
}
