//! 2D mesh topology: nodes, coordinates, directed links.

use std::fmt;

/// Identifier of a mesh node (tile attachment point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Grid coordinate (x = column, y = row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, 0-based from the west edge.
    pub x: u16,
    /// Row, 0-based from the north edge.
    pub y: u16,
}

impl Coord {
    /// Manhattan distance to `other` — the minimal hop count in a mesh.
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u32
    }
}

/// The four mesh directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward smaller y.
    North,
    /// Toward larger y.
    South,
    /// Toward larger x.
    East,
    /// Toward smaller x.
    West,
}

impl Direction {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Direction; 4] =
        [Direction::North, Direction::South, Direction::East, Direction::West];

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

/// A directed link: the output port of `from` in direction `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Upstream node.
    pub from: NodeId,
    /// Port direction.
    pub dir: DirectionOrd,
}

/// `Direction` with derived `Ord` for map keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DirectionOrd {
    /// See [`Direction::North`].
    North,
    /// See [`Direction::South`].
    South,
    /// See [`Direction::East`].
    East,
    /// See [`Direction::West`].
    West,
}

impl From<Direction> for DirectionOrd {
    fn from(d: Direction) -> Self {
        match d {
            Direction::North => DirectionOrd::North,
            Direction::South => DirectionOrd::South,
            Direction::East => DirectionOrd::East,
            Direction::West => DirectionOrd::West,
        }
    }
}

impl From<DirectionOrd> for Direction {
    fn from(d: DirectionOrd) -> Self {
        match d {
            DirectionOrd::North => Direction::North,
            DirectionOrd::South => Direction::South,
            DirectionOrd::East => Direction::East,
            DirectionOrd::West => Direction::West,
        }
    }
}

/// A `width × height` 2D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2d {
    width: u16,
    height: u16,
}

impl Mesh2d {
    /// Creates a mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the node count exceeds `u16`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!((width as u32) * (height as u32) <= u16::MAX as u32 + 1, "mesh too large");
        Mesh2d { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Node at `(x, y)`, if in range.
    pub fn node_at(&self, x: u16, y: u16) -> Option<NodeId> {
        if x < self.width && y < self.height {
            Some(NodeId(y * self.width + x))
        } else {
            None
        }
    }

    /// Coordinate of `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!((node.0 as usize) < self.node_count(), "node out of range");
        Coord { x: node.0 % self.width, y: node.0 / self.width }
    }

    /// All node ids in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u16).map(NodeId)
    }

    /// The neighbor of `node` in `dir`, if any.
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let (nx, ny) = match dir {
            Direction::North => (c.x as i32, c.y as i32 - 1),
            Direction::South => (c.x as i32, c.y as i32 + 1),
            Direction::East => (c.x as i32 + 1, c.y as i32),
            Direction::West => (c.x as i32 - 1, c.y as i32),
        };
        if nx < 0 || ny < 0 || nx >= self.width as i32 || ny >= self.height as i32 {
            None
        } else {
            self.node_at(nx as u16, ny as u16)
        }
    }

    /// All directed links in the mesh.
    pub fn links(&self) -> Vec<LinkId> {
        let mut out = Vec::new();
        for node in self.nodes() {
            for dir in Direction::ALL {
                if self.neighbor(node, dir).is_some() {
                    out.push(LinkId { from: node, dir: dir.into() });
                }
            }
        }
        out
    }

    /// Minimal hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }

    /// Dense index of a directed link in `0..self.link_index_count()`,
    /// for array-backed per-link state (occupancy stamps, fault masks)
    /// instead of tree-map lookups on the per-hop hot path.
    pub fn link_index(&self, link: LinkId) -> usize {
        link.from.0 as usize * 4
            + match link.dir {
                DirectionOrd::North => 0,
                DirectionOrd::South => 1,
                DirectionOrd::East => 2,
                DirectionOrd::West => 3,
            }
    }

    /// Size of the dense link-index space (includes edge ports that have
    /// no neighbor; those indices are simply never used).
    pub fn link_index_count(&self) -> usize {
        self.node_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh2d::new(4, 3);
        assert_eq!(m.node_count(), 12);
        for node in m.nodes() {
            let c = m.coord(node);
            assert_eq!(m.node_at(c.x, c.y), Some(node));
        }
    }

    #[test]
    fn out_of_range_is_none() {
        let m = Mesh2d::new(4, 3);
        assert_eq!(m.node_at(4, 0), None);
        assert_eq!(m.node_at(0, 3), None);
    }

    #[test]
    fn neighbors_at_corner_and_center() {
        let m = Mesh2d::new(3, 3);
        let corner = m.node_at(0, 0).unwrap();
        assert_eq!(m.neighbor(corner, Direction::North), None);
        assert_eq!(m.neighbor(corner, Direction::West), None);
        assert_eq!(m.neighbor(corner, Direction::East), m.node_at(1, 0));
        assert_eq!(m.neighbor(corner, Direction::South), m.node_at(0, 1));
        let center = m.node_at(1, 1).unwrap();
        for dir in Direction::ALL {
            assert!(m.neighbor(center, dir).is_some());
        }
    }

    #[test]
    fn link_count_matches_formula() {
        // Directed links in a w×h mesh: 2*(w-1)*h + 2*w*(h-1).
        let m = Mesh2d::new(4, 3);
        assert_eq!(m.links().len(), 2 * 3 * 3 + 2 * 4 * 2);
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh2d::new(8, 8);
        let a = m.node_at(0, 0).unwrap();
        let b = m.node_at(7, 7).unwrap();
        assert_eq!(m.hops(a, b), 14);
        assert_eq!(m.hops(a, a), 0);
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_dim() {
        Mesh2d::new(0, 4);
    }
}
