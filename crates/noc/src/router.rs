//! Routing decisions: deterministic XY and fault-adaptive minimal-first
//! routing.

use crate::topology::{Coord, Direction, LinkId, Mesh2d, NodeId};
use std::collections::BTreeSet;

/// Routing algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Dimension-ordered: resolve X first, then Y. Deadlock-free, but a
    /// single dead link on the unique path stalls all traffic through it.
    #[default]
    Xy,
    /// Fault-adaptive: prefer productive (distance-reducing) directions
    /// whose links are alive; permit a bounded number of misroutes around
    /// faults. Falls back to dropping when boxed in.
    FaultAdaptive {
        /// Maximum non-productive hops a packet may take before it is
        /// dropped (prevents livelock around fault regions).
        max_misroutes: u32,
    },
}

/// Why a router could not forward a packet this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteBlock {
    /// The chosen output link is currently occupied — retry next cycle.
    Contention,
    /// No usable output exists (dead links / misroute budget exhausted).
    Dead,
}

/// Computes the output direction for a packet at `here` heading to `dst`.
///
/// `link_ok` reports whether the directed link out of `here` in a direction
/// is alive; `link_free` whether it is unoccupied this cycle. `misroutes`
/// is the packet's running count of non-productive hops (updated by the
/// caller when a misroute is taken).
pub fn route(
    mesh: &Mesh2d,
    routing: Routing,
    here: NodeId,
    dst: NodeId,
    misroutes: u32,
    link_ok: &dyn Fn(Direction) -> bool,
    link_free: &dyn Fn(Direction) -> bool,
) -> Result<Direction, RouteBlock> {
    debug_assert_ne!(here, dst, "already at destination");
    let hc = mesh.coord(here);
    let dc = mesh.coord(dst);
    match routing {
        Routing::Xy => {
            let dir = xy_direction(hc, dc);
            if !link_ok(dir) {
                Err(RouteBlock::Dead)
            } else if !link_free(dir) {
                Err(RouteBlock::Contention)
            } else {
                Ok(dir)
            }
        }
        Routing::FaultAdaptive { max_misroutes } => {
            // Productive directions first (deterministic order: X before Y).
            let mut productive: Vec<Direction> = Vec::with_capacity(2);
            if dc.x != hc.x {
                productive.push(if dc.x > hc.x { Direction::East } else { Direction::West });
            }
            if dc.y != hc.y {
                productive.push(if dc.y > hc.y { Direction::South } else { Direction::North });
            }
            let mut saw_contention = false;
            for dir in &productive {
                if mesh.neighbor(here, *dir).is_some() && link_ok(*dir) {
                    if link_free(*dir) {
                        return Ok(*dir);
                    }
                    saw_contention = true;
                }
            }
            // Misroute if allowed: any live link that is not anti-productive
            // beyond budget. Deterministic order for reproducibility.
            if misroutes < max_misroutes {
                let productive_set: BTreeSet<u8> = productive.iter().map(|d| dir_tag(*d)).collect();
                for dir in Direction::ALL {
                    if productive_set.contains(&dir_tag(dir)) {
                        continue;
                    }
                    if mesh.neighbor(here, dir).is_some() && link_ok(dir) {
                        if link_free(dir) {
                            return Ok(dir);
                        }
                        saw_contention = true;
                    }
                }
            }
            if saw_contention {
                Err(RouteBlock::Contention)
            } else {
                Err(RouteBlock::Dead)
            }
        }
    }
}

/// The unique XY direction from `here` toward `dst`.
fn xy_direction(hc: Coord, dc: Coord) -> Direction {
    if dc.x != hc.x {
        if dc.x > hc.x {
            Direction::East
        } else {
            Direction::West
        }
    } else if dc.y > hc.y {
        Direction::South
    } else {
        Direction::North
    }
}

fn dir_tag(d: Direction) -> u8 {
    match d {
        Direction::North => 0,
        Direction::South => 1,
        Direction::East => 2,
        Direction::West => 3,
    }
}

/// The full XY path (list of directed links) from `src` to `dst`.
pub fn xy_path(mesh: &Mesh2d, src: NodeId, dst: NodeId) -> Vec<LinkId> {
    let mut out = Vec::new();
    let mut here = src;
    while here != dst {
        let dir = xy_direction(mesh.coord(here), mesh.coord(dst));
        out.push(LinkId { from: here, dir: dir.into() });
        here = mesh.neighbor(here, dir).expect("XY path stays in mesh");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ok(_: Direction) -> bool {
        true
    }

    #[test]
    fn xy_goes_east_then_south() {
        let m = Mesh2d::new(4, 4);
        let src = m.node_at(0, 0).unwrap();
        let dst = m.node_at(2, 2).unwrap();
        let path = xy_path(&m, src, dst);
        assert_eq!(path.len(), 4);
        let dirs: Vec<Direction> = path.iter().map(|l| l.dir.into()).collect();
        assert_eq!(
            dirs,
            vec![Direction::East, Direction::East, Direction::South, Direction::South]
        );
    }

    #[test]
    fn xy_route_blocks_on_dead_link() {
        let m = Mesh2d::new(4, 1);
        let src = m.node_at(0, 0).unwrap();
        let dst = m.node_at(3, 0).unwrap();
        let r = route(&m, Routing::Xy, src, dst, 0, &|_| false, &all_ok);
        assert_eq!(r, Err(RouteBlock::Dead));
    }

    #[test]
    fn xy_route_contention() {
        let m = Mesh2d::new(4, 1);
        let src = m.node_at(0, 0).unwrap();
        let dst = m.node_at(3, 0).unwrap();
        let r = route(&m, Routing::Xy, src, dst, 0, &all_ok, &|_| false);
        assert_eq!(r, Err(RouteBlock::Contention));
    }

    #[test]
    fn adaptive_prefers_productive() {
        let m = Mesh2d::new(4, 4);
        let src = m.node_at(1, 1).unwrap();
        let dst = m.node_at(3, 3).unwrap();
        let r =
            route(&m, Routing::FaultAdaptive { max_misroutes: 4 }, src, dst, 0, &all_ok, &all_ok)
                .unwrap();
        assert_eq!(r, Direction::East);
    }

    #[test]
    fn adaptive_routes_around_dead_link() {
        let m = Mesh2d::new(4, 4);
        let src = m.node_at(1, 1).unwrap();
        let dst = m.node_at(3, 1).unwrap();
        // East is dead: should pick another productive (none — only East is
        // productive in X; Y distance is 0) → misroute North or South.
        let r = route(
            &m,
            Routing::FaultAdaptive { max_misroutes: 4 },
            src,
            dst,
            0,
            &|d| d != Direction::East,
            &all_ok,
        )
        .unwrap();
        assert!(matches!(r, Direction::North | Direction::South | Direction::West));
    }

    #[test]
    fn adaptive_exhausts_misroute_budget() {
        let m = Mesh2d::new(4, 4);
        let src = m.node_at(1, 1).unwrap();
        let dst = m.node_at(3, 1).unwrap();
        let r = route(
            &m,
            Routing::FaultAdaptive { max_misroutes: 2 },
            src,
            dst,
            2, // budget used up
            &|d| d != Direction::East,
            &all_ok,
        );
        assert_eq!(r, Err(RouteBlock::Dead));
    }

    #[test]
    fn adaptive_reports_contention_over_dead() {
        let m = Mesh2d::new(4, 4);
        let src = m.node_at(1, 1).unwrap();
        let dst = m.node_at(3, 3).unwrap();
        let r =
            route(&m, Routing::FaultAdaptive { max_misroutes: 0 }, src, dst, 0, &all_ok, &|_| {
                false
            });
        assert_eq!(r, Err(RouteBlock::Contention));
    }
}
