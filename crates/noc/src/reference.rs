//! Scan-loop reference model for the packet network — the executable
//! specification of [`crate::network::Network`].
//!
//! This is the pre-optimization formulation: every cycle, walk the whole
//! in-flight list in injection order and let each packet attempt one hop
//! (`cycles × flights` work, a fresh per-cycle link-occupancy set). It is
//! deliberately simple and obviously correct; the production engine in
//! [`crate::network`] replaces the scan with a slab arena plus an indexed
//! next-event-time queue and must stay *observably identical* — the
//! `noc_event_queue_matches_reference_model` property test in the
//! top-level suite holds both models to the same `(cycle, packet)`
//! delivery and drop sequences. Keep this model dumb: its only job is to
//! be trustworthy.

use crate::network::{Delivery, Drop, NetworkConfig, PacketId};
use crate::router::{route, RouteBlock};
use crate::topology::{Direction, LinkId, Mesh2d, NodeId};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct Flight {
    id: PacketId,
    dst: NodeId,
    here: NodeId,
    injected_at: u64,
    hops: u32,
    misroutes: u32,
    stalled: u32,
    done: bool,
}

/// The retain-loop packet network: same configuration, same observable
/// records, naive per-cycle execution.
#[derive(Debug)]
pub struct ReferenceNetwork {
    mesh: Mesh2d,
    config: NetworkConfig,
    now: u64,
    next_packet: u64,
    flights: Vec<Flight>,
    dead_links: BTreeSet<LinkId>,
    /// Delivered packets, in delivery order.
    pub delivered: Vec<Delivery>,
    /// Dropped packets, in drop order.
    pub dropped: Vec<Drop>,
}

impl ReferenceNetwork {
    /// Creates the reference network over `mesh`.
    pub fn new(mesh: Mesh2d, config: NetworkConfig) -> Self {
        ReferenceNetwork {
            mesh,
            config,
            now: 0,
            next_packet: 0,
            flights: Vec::new(),
            dead_links: BTreeSet::new(),
            delivered: Vec::new(),
            dropped: Vec::new(),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// Marks a directed link dead.
    pub fn kill_link(&mut self, link: LinkId) {
        self.dead_links.insert(link);
    }

    /// Injects a packet (self-delivery is immediate), mirroring
    /// [`crate::network::Network::inject`].
    pub fn inject(&mut self, src: NodeId, dst: NodeId, _payload_words: u32) -> PacketId {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        if src == dst {
            self.delivered.push(Delivery { packet: id, at: self.now, latency: 0, hops: 0 });
            return id;
        }
        self.flights.push(Flight {
            id,
            dst,
            here: src,
            injected_at: self.now,
            hops: 0,
            misroutes: 0,
            stalled: 0,
            done: false,
        });
        id
    }

    /// Advances one cycle: every in-flight packet attempts one hop, in
    /// injection order (older packets win contended links).
    pub fn tick(&mut self) {
        self.now += self.config.hop_cycles as u64;
        let mut used: BTreeSet<LinkId> = BTreeSet::new();
        for i in 0..self.flights.len() {
            let (here, dst, misroutes) = {
                let f = &self.flights[i];
                (f.here, f.dst, f.misroutes)
            };
            let mesh = self.mesh;
            let dead = &self.dead_links;
            let link_ok = |d: Direction| {
                mesh.neighbor(here, d).is_some()
                    && !dead.contains(&LinkId { from: here, dir: d.into() })
            };
            let used_ref = &used;
            let link_free =
                |d: Direction| !used_ref.contains(&LinkId { from: here, dir: d.into() });
            match route(&self.mesh, self.config.routing, here, dst, misroutes, &link_ok, &link_free)
            {
                Ok(dir) => {
                    used.insert(LinkId { from: here, dir: dir.into() });
                    let next = self.mesh.neighbor(here, dir).expect("router checked neighbor");
                    let before = self.mesh.hops(here, dst);
                    let after = self.mesh.hops(next, dst);
                    let f = &mut self.flights[i];
                    if after >= before {
                        f.misroutes += 1;
                    }
                    f.here = next;
                    f.hops += 1;
                    f.stalled = 0;
                    if next == dst {
                        f.done = true;
                        self.delivered.push(Delivery {
                            packet: f.id,
                            at: self.now,
                            latency: self.now - f.injected_at,
                            hops: f.hops,
                        });
                    }
                }
                Err(RouteBlock::Contention) => {
                    let f = &mut self.flights[i];
                    f.stalled += 1;
                    if f.stalled >= self.config.stall_timeout {
                        f.done = true;
                        self.dropped.push(Drop { packet: f.id, at: self.now, dead_end: false });
                    }
                }
                Err(RouteBlock::Dead) => {
                    let f = &mut self.flights[i];
                    f.done = true;
                    self.dropped.push(Drop { packet: f.id, at: self.now, dead_end: true });
                }
            }
        }
        // The namesake retain: drop finished flights, preserving injection
        // order for the survivors.
        self.flights.retain(|f| !f.done);
    }

    /// Ticks until the network drains or `max_cycles` elapse.
    pub fn drain(&mut self, max_cycles: u64) -> u64 {
        let start = self.now;
        while self.in_flight() > 0 && self.now - start < max_cycles {
            self.tick();
        }
        self.now - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Routing;

    #[test]
    fn reference_delivers_like_the_real_network() {
        let mesh = Mesh2d::new(4, 4);
        let mut r = ReferenceNetwork::new(mesh, NetworkConfig::default());
        let s = mesh.node_at(0, 0).unwrap();
        let d = mesh.node_at(3, 3).unwrap();
        r.inject(s, d, 1);
        r.inject(d, s, 1);
        r.drain(100);
        assert_eq!(r.delivered.len(), 2);
        assert!(r.delivered.iter().all(|del| del.hops == 6));
    }

    #[test]
    fn reference_respects_dead_links() {
        let mesh = Mesh2d::new(4, 1);
        let mut r = ReferenceNetwork::new(
            mesh,
            NetworkConfig { routing: Routing::Xy, ..Default::default() },
        );
        let s = mesh.node_at(0, 0).unwrap();
        r.kill_link(LinkId { from: mesh.node_at(1, 0).unwrap(), dir: Direction::East.into() });
        r.inject(s, mesh.node_at(3, 0).unwrap(), 1);
        r.drain(100);
        assert_eq!(r.dropped.len(), 1);
        assert!(r.dropped[0].dead_end);
    }
}
