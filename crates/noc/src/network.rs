//! Cycle-driven packet network over a 2D mesh with link contention and
//! link faults.
//!
//! The model is packet-granular (one packet occupies one link per cycle):
//! coarser than flit-level wormhole simulation but preserving the
//! properties E10 measures — contention, path length, and the effect of
//! dead links under different routing policies.
//!
//! # Engine
//!
//! Flights live in a [`Slab`] arena (stable slots, freelist reuse — no
//! per-packet allocation churn) and are driven by an indexed
//! next-event-time queue: a binary heap of `(next_attempt_cycle,
//! injection_order, slot)` keys. [`Network::drain`] pops the queue
//! instead of rescanning the whole in-flight list every cycle, so its
//! cost is proportional to hop *attempts* (near-linear in deliveries on
//! an uncongested mesh) rather than `cycles × flights`, and idle cycles
//! — e.g. while one long-haul packet crosses a large mesh after the rest
//! delivered — are skipped outright. Per-cycle link occupancy is a dense
//! cycle-stamped array indexed by [`Mesh2d::link_index`], replacing the
//! tree-map the old scan loop rebuilt every cycle.
//!
//! Contention priority is by injection order (oldest packet first), and
//! the heap key makes that explicit. The behaviourally identical
//! scan-loop specification lives in [`crate::reference`]; a property
//! test holds the two to the same `(cycle, packet)` delivery/drop
//! sequence.
//!
//! # Link fault scripts
//!
//! Beyond binary dead links ([`Network::kill_link`]), a [`LinkScript`]
//! degrades chosen directed links over cycle *windows*: probabilistic
//! packet drops, payload corruption (the packet still delivers — catching
//! it is the MAC layer's job — but is recorded in
//! [`NetworkStats::corrupted`]), and extra per-hop delay. Faults are
//! evaluated in the indexed next-event queue path at the moment a packet
//! crosses the scripted link, from a dedicated script RNG — an empty
//! script leaves the engine's behaviour (and the reference-model
//! equivalence) untouched.

use crate::router::{route, RouteBlock, Routing};
use crate::topology::{Direction, LinkId, Mesh2d, NodeId};
use rsoc_sim::{SimRng, Slab, Window};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Routing policy.
    pub routing: Routing,
    /// Cycles a packet may wait at a single node before being dropped.
    pub stall_timeout: u32,
    /// Per-hop traversal latency in cycles (link + router pipeline).
    pub hop_cycles: u32,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig { routing: Routing::Xy, stall_timeout: 64, hop_cycles: 1 }
    }
}

#[derive(Debug, Clone)]
struct Flight {
    id: PacketId,
    dst: NodeId,
    here: NodeId,
    injected_at: u64,
    /// Injection order — the contention-priority key (never reused, unlike
    /// the slab slot).
    order: u64,
    hops: u32,
    misroutes: u32,
    stalled: u32,
    /// Whether a scripted link fault corrupted the payload in transit.
    corrupted: bool,
    /// Attempt cycle a scripted extra delay has already been served for
    /// (the re-attempt at this cycle crosses without being re-delayed).
    delay_served: u64,
}

/// One windowed fault on a directed mesh link: while `window` is active,
/// packets crossing `link` are dropped with `drop_rate`, corrupted with
/// `corrupt_rate`, and delayed by `extra_delay` cycles. The window type
/// is shared with the BFT scenario engine via [`rsoc_sim::Window`].
#[derive(Debug, Clone, Copy)]
pub struct LinkFaultWindow {
    /// The degraded directed link.
    pub link: LinkId,
    /// When the fault is active.
    pub window: Window,
    /// Probability a crossing packet is lost on the link.
    pub drop_rate: f64,
    /// Probability a crossing packet's payload is corrupted (it still
    /// delivers; [`NetworkStats::corrupted`] records it).
    pub corrupt_rate: f64,
    /// Extra cycles the hop takes while the fault is active.
    pub extra_delay: u32,
}

/// A deterministic, windowed link-degradation script (see module docs).
#[derive(Debug, Clone, Default)]
pub struct LinkScript {
    faults: Vec<LinkFaultWindow>,
}

impl LinkScript {
    /// An empty script (no degradation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one windowed link fault.
    pub fn fault(mut self, fault: LinkFaultWindow) -> Self {
        self.faults.push(fault);
        self
    }

    /// True when the script degrades nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

/// Record of a delivered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Which packet.
    pub packet: PacketId,
    /// Cycle of delivery.
    pub at: u64,
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Hops actually traversed.
    pub hops: u32,
}

/// Record of a dropped packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Drop {
    /// Which packet.
    pub packet: PacketId,
    /// Cycle of the drop decision.
    pub at: u64,
    /// Whether the drop was due to dead links (vs. stall timeout).
    pub dead_end: bool,
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    /// Successfully delivered packets.
    pub delivered: Vec<Delivery>,
    /// Dropped packets.
    pub dropped: Vec<Drop>,
    /// Delivered packets whose payload a scripted link fault corrupted in
    /// transit (in delivery order; the MAC layer above must catch these).
    pub corrupted: Vec<PacketId>,
    /// Total link traversals.
    pub link_traversals: u64,
}

impl NetworkStats {
    /// Delivery ratio over all terminated packets.
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.delivered.len() + self.dropped.len();
        if total == 0 {
            return 1.0;
        }
        self.delivered.len() as f64 / total as f64
    }

    /// Mean delivered latency in cycles (`None` when nothing delivered).
    pub fn mean_latency(&self) -> Option<f64> {
        if self.delivered.is_empty() {
            return None;
        }
        Some(
            self.delivered.iter().map(|d| d.latency as f64).sum::<f64>()
                / self.delivered.len() as f64,
        )
    }
}

/// The packet network.
#[derive(Debug)]
pub struct Network {
    mesh: Mesh2d,
    config: NetworkConfig,
    now: u64,
    next_packet: u64,
    next_order: u64,
    flights: Slab<Flight>,
    /// Next-event queue: `(attempt_cycle, injection_order, slot)`, earliest
    /// first. Every in-flight packet has exactly one pending entry.
    queue: BinaryHeap<Reverse<(u64, u64, u32)>>,
    dead_links: BTreeSet<LinkId>,
    /// Dense mirror of `dead_links` for the per-hop check.
    dead: Vec<bool>,
    /// Cycle stamp per directed link: a link is occupied for cycle `t`
    /// iff `link_used_at[idx] == t` (`u64::MAX` = never used).
    link_used_at: Vec<u64>,
    /// Windowed link degradation (empty = no hook in the hop path).
    script: LinkScript,
    /// Script randomness, independent of any caller RNG.
    script_rng: SimRng,
    stats: NetworkStats,
}

impl Network {
    /// Creates a network over `mesh`.
    pub fn new(mesh: Mesh2d, config: NetworkConfig) -> Self {
        Network {
            mesh,
            config,
            now: 0,
            next_packet: 0,
            next_order: 0,
            flights: Slab::new(),
            queue: BinaryHeap::new(),
            dead_links: BTreeSet::new(),
            dead: vec![false; mesh.link_index_count()],
            link_used_at: vec![u64::MAX; mesh.link_index_count()],
            script: LinkScript::new(),
            script_rng: SimRng::new(0),
            stats: NetworkStats::default(),
        }
    }

    /// Installs a windowed link-degradation script, with its own RNG
    /// stream derived from `seed`. Replaces any previous script.
    pub fn set_link_script(&mut self, script: LinkScript, seed: u64) {
        self.script = script;
        self.script_rng = SimRng::new(seed ^ 0x11FA_0171);
    }

    /// The topology.
    pub fn mesh(&self) -> &Mesh2d {
        &self.mesh
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Marks a directed link dead (router port failure / wire defect).
    pub fn kill_link(&mut self, link: LinkId) {
        self.dead_links.insert(link);
        self.dead[self.mesh.link_index(link)] = true;
    }

    /// Revives a dead link (e.g., after reconfiguration repaired the port).
    pub fn revive_link(&mut self, link: LinkId) {
        self.dead_links.remove(&link);
        self.dead[self.mesh.link_index(link)] = false;
    }

    /// Kills each directed link independently with probability `p`.
    pub fn kill_links_randomly(&mut self, p: f64, rng: &mut SimRng) {
        for link in self.mesh.links() {
            if rng.chance(p) {
                self.kill_link(link);
            }
        }
    }

    /// Number of currently dead links.
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.len()
    }

    /// Injects a packet; it starts moving on the next [`tick`](Self::tick).
    ///
    /// Delivery to self is immediate.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, _payload_words: u32) -> PacketId {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        if src == dst {
            self.stats.delivered.push(Delivery { packet: id, at: self.now, latency: 0, hops: 0 });
            return id;
        }
        let order = self.next_order;
        self.next_order += 1;
        let slot = self.flights.insert(Flight {
            id,
            dst,
            here: src,
            injected_at: self.now,
            order,
            hops: 0,
            misroutes: 0,
            stalled: 0,
            corrupted: false,
            delay_served: u64::MAX,
        });
        self.queue.push(Reverse((self.now + self.config.hop_cycles as u64, order, slot)));
        id
    }

    /// Advances one cycle: every in-flight packet attempts one hop.
    /// At most one packet crosses each directed link per cycle; older
    /// packets (by injection) win contended links.
    pub fn tick(&mut self) {
        self.now += self.config.hop_cycles as u64;
        self.process_due(self.now);
    }

    /// Processes every queued hop attempt due at or before `horizon`, in
    /// `(cycle, injection order)` order.
    // The per-hop kernel runs once per link traversal; `rsoc_lint` keeps
    // it free of per-hop heap churn (flights live in the slab arena).
    // lint: hot-path
    fn process_due(&mut self, horizon: u64) {
        while let Some(&Reverse((at, _, _))) = self.queue.peek() {
            if at > horizon {
                break;
            }
            let Reverse((at, _, slot)) = self.queue.pop().expect("peeked entry");
            self.attempt_hop(at, slot);
        }
    }

    /// One hop attempt for the flight in `slot` during cycle `t`.
    fn attempt_hop(&mut self, t: u64, slot: u32) {
        let (here, dst, misroutes, order) = {
            let f = self.flights.get(slot).expect("queued flight present");
            (f.here, f.dst, f.misroutes, f.order)
        };
        let mesh = self.mesh;
        let dead = &self.dead;
        let used = &self.link_used_at;
        let link_ok = |d: Direction| {
            mesh.neighbor(here, d).is_some()
                && !dead[mesh.link_index(LinkId { from: here, dir: d.into() })]
        };
        let link_free =
            |d: Direction| used[mesh.link_index(LinkId { from: here, dir: d.into() })] != t;
        match route(&self.mesh, self.config.routing, here, dst, misroutes, &link_ok, &link_free) {
            Ok(dir) => {
                let link = LinkId { from: here, dir: dir.into() };
                // A scripted extra delay stalls the packet at the link for
                // the fault's duration *before* it crosses: the attempt is
                // re-queued (once — the re-attempt is marked served), so
                // occupancy, drop/corrupt judgement, and the delivery
                // timestamp all happen at the true crossing cycle and the
                // stats stay chronological.
                if !self.script.is_empty()
                    && self.flights.get(slot).expect("flight").delay_served != t
                {
                    let extra: u64 = self
                        .script
                        .faults
                        .iter()
                        .filter(|fw| fw.link == link && fw.window.contains(t))
                        .map(|fw| fw.extra_delay as u64)
                        .sum();
                    if extra > 0 {
                        let f = self.flights.get_mut(slot).expect("flight present");
                        f.delay_served = t + extra;
                        self.queue.push(Reverse((t + extra, f.order, slot)));
                        return;
                    }
                }
                self.link_used_at[self.mesh.link_index(link)] = t;
                // Drop/corrupt degradation, judged as the packet crosses
                // the link (the link was already occupied — a dropped
                // packet physically entered it and died there).
                let mut corrupt_hit = false;
                if !self.script.is_empty() {
                    for i in 0..self.script.faults.len() {
                        let fw = self.script.faults[i];
                        if fw.link != link || !fw.window.contains(t) {
                            continue;
                        }
                        if fw.drop_rate > 0.0 && self.script_rng.chance(fw.drop_rate) {
                            let f = self.flights.remove(slot).expect("flight present");
                            self.stats.dropped.push(Drop { packet: f.id, at: t, dead_end: false });
                            return;
                        }
                        if fw.corrupt_rate > 0.0 && self.script_rng.chance(fw.corrupt_rate) {
                            corrupt_hit = true;
                        }
                    }
                }
                let next = self.mesh.neighbor(here, dir).expect("router checked neighbor");
                // Count whether this hop reduced distance (else misroute).
                let before = self.mesh.hops(here, dst);
                let after = self.mesh.hops(next, dst);
                let f = self.flights.get_mut(slot).expect("flight present");
                if after >= before {
                    f.misroutes += 1;
                }
                f.here = next;
                f.hops += 1;
                f.stalled = 0;
                f.corrupted |= corrupt_hit;
                self.stats.link_traversals += 1;
                if next == dst {
                    let f = self.flights.remove(slot).expect("flight present");
                    if f.corrupted {
                        self.stats.corrupted.push(f.id);
                    }
                    self.stats.delivered.push(Delivery {
                        packet: f.id,
                        at: t,
                        latency: t - f.injected_at,
                        hops: f.hops,
                    });
                } else {
                    self.queue.push(Reverse((t + self.config.hop_cycles as u64, order, slot)));
                }
            }
            Err(RouteBlock::Contention) => {
                let f = self.flights.get_mut(slot).expect("flight present");
                f.stalled += 1;
                if f.stalled >= self.config.stall_timeout {
                    let f = self.flights.remove(slot).expect("flight present");
                    self.stats.dropped.push(Drop { packet: f.id, at: t, dead_end: false });
                } else {
                    self.queue.push(Reverse((t + self.config.hop_cycles as u64, order, slot)));
                }
            }
            Err(RouteBlock::Dead) => {
                let f = self.flights.remove(slot).expect("flight present");
                self.stats.dropped.push(Drop { packet: f.id, at: t, dead_end: true });
            }
        }
    }
    // lint: end

    /// Runs until the network drains or `max_cycles` elapse, jumping
    /// straight between event times instead of rescanning flights every
    /// cycle. Returns the number of cycles simulated.
    ///
    /// Budget semantics match the reference tick loop exactly: a "tick"
    /// (one batch of hop attempts) executes iff the budget was not yet
    /// exhausted when it started, so with `hop_cycles > 1` the final
    /// tick may overshoot `max_cycles`, just as the scan-loop model's
    /// `while now - start < max_cycles { tick() }` does.
    pub fn drain(&mut self, max_cycles: u64) -> u64 {
        let start = self.now;
        while self.in_flight() > 0 && self.now - start < max_cycles {
            let Some(&Reverse((at, _, _))) = self.queue.peek() else { break };
            self.now = at;
            self.process_due(at);
        }
        self.now - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Direction;

    fn net(routing: Routing) -> Network {
        Network::new(Mesh2d::new(4, 4), NetworkConfig { routing, ..Default::default() })
    }

    #[test]
    fn delivers_across_mesh_with_minimal_hops() {
        let mut n = net(Routing::Xy);
        let src = n.mesh().node_at(0, 0).unwrap();
        let dst = n.mesh().node_at(3, 3).unwrap();
        n.inject(src, dst, 1);
        n.drain(1000);
        assert_eq!(n.stats().delivered.len(), 1);
        let d = n.stats().delivered[0];
        assert_eq!(d.hops, 6);
        assert_eq!(d.latency, 6);
    }

    #[test]
    fn self_delivery_is_instant() {
        let mut n = net(Routing::Xy);
        let a = n.mesh().node_at(1, 1).unwrap();
        n.inject(a, a, 1);
        assert_eq!(n.stats().delivered.len(), 1);
        assert_eq!(n.stats().delivered[0].latency, 0);
    }

    #[test]
    fn contention_serializes_shared_link() {
        let mut n = net(Routing::Xy);
        let src = n.mesh().node_at(0, 0).unwrap();
        let dst = n.mesh().node_at(2, 0).unwrap();
        // Two packets on the same row path: the second waits behind the first.
        n.inject(src, dst, 1);
        n.inject(src, dst, 1);
        n.drain(1000);
        assert_eq!(n.stats().delivered.len(), 2);
        let mut lats: Vec<u64> = n.stats().delivered.iter().map(|d| d.latency).collect();
        lats.sort_unstable();
        assert_eq!(lats[0], 2);
        assert!(lats[1] > 2, "second packet must stall at least once: {lats:?}");
    }

    #[test]
    fn older_packet_wins_contended_link() {
        let mut n = net(Routing::Xy);
        let src = n.mesh().node_at(0, 0).unwrap();
        let dst = n.mesh().node_at(3, 0).unwrap();
        let first = n.inject(src, dst, 1);
        let second = n.inject(src, dst, 1);
        n.drain(1000);
        let lat = |p: PacketId| {
            n.stats().delivered.iter().find(|d| d.packet == p).expect("delivered").latency
        };
        assert!(lat(first) < lat(second), "injection order is contention priority");
    }

    #[test]
    fn xy_drops_at_dead_link_but_adaptive_survives() {
        let kill = |n: &mut Network| {
            let from = n.mesh().node_at(1, 0).unwrap();
            n.kill_link(LinkId { from, dir: Direction::East.into() });
        };
        let src_dst =
            |n: &Network| (n.mesh().node_at(0, 0).unwrap(), n.mesh().node_at(3, 0).unwrap());

        let mut xy = net(Routing::Xy);
        kill(&mut xy);
        let (s, d) = src_dst(&xy);
        xy.inject(s, d, 1);
        xy.drain(1000);
        assert_eq!(xy.stats().delivered.len(), 0);
        assert_eq!(xy.stats().dropped.len(), 1);
        assert!(xy.stats().dropped[0].dead_end);

        let mut ad = net(Routing::FaultAdaptive { max_misroutes: 8 });
        kill(&mut ad);
        ad.inject(s, d, 1);
        ad.drain(1000);
        assert_eq!(ad.stats().delivered.len(), 1, "adaptive routes around the fault");
        assert!(ad.stats().delivered[0].hops > 3, "detour costs extra hops");
    }

    #[test]
    fn fully_dead_region_drops_adaptive_too() {
        let mut n = net(Routing::FaultAdaptive { max_misroutes: 8 });
        let src = n.mesh().node_at(0, 0).unwrap();
        // Kill both outgoing links of the source.
        n.kill_link(LinkId { from: src, dir: Direction::East.into() });
        n.kill_link(LinkId { from: src, dir: Direction::South.into() });
        let dst = n.mesh().node_at(3, 3).unwrap();
        n.inject(src, dst, 1);
        n.drain(1000);
        assert_eq!(n.stats().delivered.len(), 0);
        assert_eq!(n.stats().dropped.len(), 1);
    }

    #[test]
    fn revive_link_restores_path() {
        let mut n = net(Routing::Xy);
        let from = n.mesh().node_at(0, 0).unwrap();
        let link = LinkId { from, dir: Direction::East.into() };
        n.kill_link(link);
        assert_eq!(n.dead_link_count(), 1);
        n.revive_link(link);
        assert_eq!(n.dead_link_count(), 0);
        let dst = n.mesh().node_at(3, 0).unwrap();
        n.inject(from, dst, 1);
        n.drain(100);
        assert_eq!(n.stats().delivered.len(), 1);
    }

    #[test]
    fn stats_ratio_and_latency() {
        let mut n = net(Routing::Xy);
        let s = n.mesh().node_at(0, 0).unwrap();
        let d = n.mesh().node_at(1, 0).unwrap();
        n.inject(s, d, 1);
        n.drain(100);
        assert_eq!(n.stats().delivery_ratio(), 1.0);
        assert_eq!(n.stats().mean_latency(), Some(1.0));
    }

    #[test]
    fn random_link_killing_is_deterministic() {
        let mut rng1 = SimRng::new(5);
        let mut rng2 = SimRng::new(5);
        let mut a = net(Routing::Xy);
        let mut b = net(Routing::Xy);
        a.kill_links_randomly(0.2, &mut rng1);
        b.kill_links_randomly(0.2, &mut rng2);
        assert_eq!(a.dead_link_count(), b.dead_link_count());
    }

    #[test]
    fn drain_skips_idle_cycles_but_reports_elapsed_time() {
        // hop_cycles > 1 leaves gaps between attempt times; the event
        // queue must jump them while reporting the same elapsed span the
        // tick loop would.
        let mut n = Network::new(
            Mesh2d::new(4, 1),
            NetworkConfig { routing: Routing::Xy, stall_timeout: 64, hop_cycles: 5 },
        );
        let s = n.mesh().node_at(0, 0).unwrap();
        let d = n.mesh().node_at(3, 0).unwrap();
        n.inject(s, d, 1);
        let elapsed = n.drain(10_000);
        assert_eq!(elapsed, 15, "3 hops x 5 cycles each");
        assert_eq!(n.stats().delivered[0].latency, 15);
        assert_eq!(n.now(), 15);
    }

    #[test]
    fn drain_budget_matches_reference_with_multi_cycle_hops() {
        // The budget-crossing tick still executes (reference semantics):
        // with hop_cycles = 5 and a 3-cycle budget, the scan-loop model
        // ticks once (now 0 -> 5) because the budget was unspent when the
        // tick started. The event queue must do the same hop, not skip it.
        let config = NetworkConfig { routing: Routing::Xy, stall_timeout: 64, hop_cycles: 5 };
        let mesh = Mesh2d::new(4, 1);
        let s = mesh.node_at(0, 0).unwrap();
        let d = mesh.node_at(1, 0).unwrap();
        let mut fast = Network::new(mesh, config.clone());
        let mut reference = crate::reference::ReferenceNetwork::new(mesh, config);
        fast.inject(s, d, 1);
        reference.inject(s, d, 1);
        let fast_elapsed = fast.drain(3);
        let ref_elapsed = reference.drain(3);
        assert_eq!(fast_elapsed, ref_elapsed, "budget overshoot must match");
        assert_eq!(fast_elapsed, 5, "the started tick completes");
        assert_eq!(fast.stats().delivered.len(), 1, "one-hop packet delivered");
        assert_eq!(reference.delivered.len(), 1);
    }

    #[test]
    fn link_script_drop_window_is_time_phased() {
        // The same (src, dst) pair before, during, and after the drop
        // window: only the in-window packet dies, and it dies as a drop
        // (the link is not dead — the fault is transient).
        let src_dst =
            |n: &Network| (n.mesh().node_at(0, 0).unwrap(), n.mesh().node_at(1, 0).unwrap());
        let mut n = net(Routing::Xy);
        let (s, d) = src_dst(&n);
        let from = s;
        n.set_link_script(
            LinkScript::new().fault(LinkFaultWindow {
                link: LinkId { from, dir: Direction::East.into() },
                window: Window::new(10, 20),
                drop_rate: 1.0,
                corrupt_rate: 0.0,
                extra_delay: 0,
            }),
            7,
        );
        n.inject(s, d, 1); // crosses at cycle 1: before the window
        n.drain(5);
        assert_eq!(n.stats().delivered.len(), 1);
        while n.now() < 14 {
            n.tick(); // advance into the window
        }
        n.inject(s, d, 1); // crosses at cycle 15: inside the window
        n.drain(3);
        assert_eq!(n.stats().dropped.len(), 1);
        assert!(!n.stats().dropped[0].dead_end, "scripted loss is not a dead end");
        while n.now() < 25 {
            n.tick(); // window over
        }
        n.inject(s, d, 1);
        n.drain(5);
        assert_eq!(n.stats().delivered.len(), 2, "healed link delivers again");
    }

    #[test]
    fn link_script_corruption_delivers_but_is_recorded() {
        let mut n = net(Routing::Xy);
        let s = n.mesh().node_at(0, 0).unwrap();
        let d = n.mesh().node_at(2, 0).unwrap();
        n.set_link_script(
            LinkScript::new().fault(LinkFaultWindow {
                link: LinkId { from: s, dir: Direction::East.into() },
                window: Window::ALWAYS,
                drop_rate: 0.0,
                corrupt_rate: 1.0,
                extra_delay: 0,
            }),
            7,
        );
        let p = n.inject(s, d, 1);
        n.drain(100);
        assert_eq!(n.stats().delivered.len(), 1, "corruption does not stop delivery");
        assert_eq!(n.stats().corrupted, vec![p], "the MAC layer must see this packet flagged");
    }

    #[test]
    fn link_script_extra_delay_slows_the_scripted_link_only() {
        let path = |script: Option<LinkScript>| {
            let mut n = net(Routing::Xy);
            let s = n.mesh().node_at(0, 0).unwrap();
            let d = n.mesh().node_at(3, 0).unwrap();
            if let Some(sc) = script {
                n.set_link_script(sc, 7);
            }
            n.inject(s, d, 1);
            n.drain(1000);
            n.stats().delivered[0].latency
        };
        let clean = path(None);
        let mid = Mesh2d::new(4, 4).node_at(1, 0).unwrap();
        let slowed = path(Some(LinkScript::new().fault(LinkFaultWindow {
            link: LinkId { from: mid, dir: Direction::East.into() },
            window: Window::ALWAYS,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            extra_delay: 9,
        })));
        assert_eq!(slowed, clean + 9, "one degraded hop adds exactly its extra delay");
    }

    #[test]
    fn empty_link_script_changes_nothing() {
        let run = |with_empty_script: bool| {
            let mut n = net(Routing::Xy);
            let s = n.mesh().node_at(0, 0).unwrap();
            let d = n.mesh().node_at(3, 3).unwrap();
            if with_empty_script {
                n.set_link_script(LinkScript::new(), 99);
            }
            n.inject(s, d, 1);
            n.inject(s, d, 1);
            n.drain(1000);
            n.stats().delivered.iter().map(|x| (x.packet.0, x.at, x.hops)).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true), "disabled hooks must be invisible");
    }

    #[test]
    fn drain_respects_cycle_budget() {
        let mut n = net(Routing::Xy);
        let s = n.mesh().node_at(0, 0).unwrap();
        let d = n.mesh().node_at(3, 3).unwrap();
        n.inject(s, d, 1);
        let elapsed = n.drain(3);
        assert_eq!(elapsed, 3, "budget pins the elapsed span");
        assert_eq!(n.in_flight(), 1, "packet still traveling");
        n.drain(100);
        assert_eq!(n.stats().delivered.len(), 1);
    }
}
