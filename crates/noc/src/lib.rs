//! # rsoc-noc — network-on-chip simulator
//!
//! The paper's tiles talk over an on-chip interconnect; its replication
//! protocols (§II-A) and "networked systems of systems on chip" (§I) assume
//! message delivery across the die. This crate provides:
//!
//! * a 2D mesh topology with per-link fault states,
//! * dimension-ordered (XY) and fault-adaptive routing,
//! * a cycle-accurate-ish packet network with link contention,
//! * an end-to-end retransmission layer, and
//! * a closed-form hop-latency model used by the BFT transport in
//!   `rsoc-soc` (protocol experiments need latencies, not flit traces).
//!
//! Experiment **E10** sweeps link-fault rates over this simulator.
//!
//! ## Example
//!
//! ```
//! use rsoc_noc::{Mesh2d, Network, NetworkConfig, Routing};
//!
//! let mesh = Mesh2d::new(4, 4);
//! let mut net = Network::new(mesh, NetworkConfig { routing: Routing::Xy, ..Default::default() });
//! let src = net.mesh().node_at(0, 0).unwrap();
//! let dst = net.mesh().node_at(3, 3).unwrap();
//! let id = net.inject(src, dst, 0);
//! while net.in_flight() > 0 { net.tick(); }
//! assert!(net.stats().delivered.iter().any(|d| d.packet == id));
//! ```

pub mod latency;
pub mod network;
pub mod reference;
pub mod retransmit;
pub mod router;
pub mod topology;
pub mod traffic;

pub use latency::HopLatencyModel;
pub use network::{LinkFaultWindow, LinkScript, Network, NetworkConfig, NetworkStats};
pub use reference::ReferenceNetwork;
pub use router::Routing;
pub use topology::{Coord, Direction, LinkId, Mesh2d, NodeId};
pub use traffic::TrafficPattern;
