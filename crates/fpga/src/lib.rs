//! # rsoc-fpga — FPGA grid fabric with resilient reconfiguration
//!
//! §II-E of the paper: reconfiguration must be **internal, partial and
//! dynamic** — driven from within the fabric, bound to the reconfigured
//! frames, and concurrent with the rest of the chip — and it must be
//! *resilient*: bitstreams validated, configuration ports access-controlled,
//! privilege changes trusted.
//!
//! This crate models:
//!
//! * [`FpgaFabric`] — a grid of configuration frames with hidden backdoored
//!   locations (the §II-C "potential backdoors in the FPGA grid fabric");
//! * [`Bitstream`] — CRC-32 + HMAC-authenticated configuration payloads;
//! * [`Icap`] — the internal configuration access port with per-principal
//!   region ACLs;
//! * [`ReconfigEngine`] — disable → write → readback-validate → enable
//!   partial dynamic reconfiguration, plus relocation and spatial
//!   rejuvenation of softcore blocks.
//!
//! Experiments **E8** (voted privilege change, with `rsoc-soc`) and **E9**
//! (relocation vs grid backdoors) run on this crate.
//!
//! ## Example
//!
//! ```
//! use rsoc_crypto::MacKey;
//! use rsoc_fpga::{Bitstream, FpgaFabric, Icap, Principal, ReconfigEngine, Region};
//!
//! let fabric = FpgaFabric::new(4, 4, 8);
//! let key = MacKey::derive(1, "bitstream");
//! let mut icap = Icap::new(key.clone());
//! icap.allow(Principal(0), Region::new(0, 4));
//! let mut engine = ReconfigEngine::new(fabric, icap);
//! let bs = Bitstream::for_variant(7, Region::new(0, 4), 8, &key);
//! let receipt = engine.reconfigure(Principal(0), Region::new(0, 4), &bs, 42).unwrap();
//! assert!(receipt.cycles > 0);
//! assert_eq!(engine.fabric().block_region(42), Some(Region::new(0, 4)));
//! ```

pub mod bitstream;
pub mod fabric;
pub mod icap;
pub mod reconfig;

pub use bitstream::{crc32, Bitstream};
pub use fabric::{BlockId, FpgaFabric, FrameId, FrameState, Region};
pub use icap::{Icap, IcapError, Principal};
pub use reconfig::{ReconfigEngine, ReconfigError, ReconfigReceipt};
