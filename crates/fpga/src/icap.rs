//! The Internal Configuration Access Port with per-principal region ACLs.
//!
//! §II-E: "Provided sufficient access controls are in place at the internal
//! configuration access ports, the actual configuration of a frame can even
//! be delegated to its current user." The ACL is the mechanism the voted
//! privilege gate (in `rsoc-soc`) manipulates: in the resilient design only
//! the gate principal may write, and principals gain region rights only by
//! consensually approved privilege changes.

use crate::bitstream::Bitstream;
use crate::fabric::{FpgaFabric, FrameState, Region};
use rsoc_crypto::MacKey;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A configuration principal (kernel replica, gate, block owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Principal(pub u32);

/// ICAP errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcapError {
    /// Principal lacks write rights over (all of) the target region.
    AccessDenied,
    /// Bitstream failed CRC/HMAC/region validation.
    InvalidBitstream,
    /// Target region exceeds the fabric.
    OutOfBounds,
    /// Target region is not fully disabled (write-while-enabled hazard).
    RegionEnabled,
}

impl fmt::Display for IcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcapError::AccessDenied => write!(f, "principal lacks access to region"),
            IcapError::InvalidBitstream => write!(f, "bitstream failed validation"),
            IcapError::OutOfBounds => write!(f, "region exceeds fabric"),
            IcapError::RegionEnabled => write!(f, "region must be disabled before writing"),
        }
    }
}

impl std::error::Error for IcapError {}

/// Per-frame-write cost in cycles (configuration port bandwidth).
pub const CYCLES_PER_WORD: u64 = 4;

/// The access-controlled internal configuration port.
#[derive(Debug, Clone)]
pub struct Icap {
    key: MacKey,
    acl: BTreeMap<Principal, BTreeSet<Region>>,
    writes: u64,
    rejected: u64,
}

impl Icap {
    /// Creates an ICAP that validates bitstreams under `key` and starts
    /// with an empty ACL (default-deny).
    pub fn new(key: MacKey) -> Self {
        Icap { key, acl: BTreeMap::new(), writes: 0, rejected: 0 }
    }

    /// The bitstream-validation key (shared with legitimate signers).
    pub fn key(&self) -> &MacKey {
        &self.key
    }

    /// Grants `principal` write rights over `region`.
    pub fn allow(&mut self, principal: Principal, region: Region) {
        self.acl.entry(principal).or_default().insert(region);
    }

    /// Revokes a specific grant.
    pub fn revoke(&mut self, principal: Principal, region: Region) {
        if let Some(set) = self.acl.get_mut(&principal) {
            set.remove(&region);
        }
    }

    /// Revokes everything a principal holds.
    pub fn revoke_all(&mut self, principal: Principal) {
        self.acl.remove(&principal);
    }

    /// Whether `principal` may write all frames of `region` (some granted
    /// region must fully cover it).
    pub fn permits(&self, principal: Principal, region: Region) -> bool {
        self.acl.get(&principal).is_some_and(|set| {
            set.iter().any(|granted| {
                granted.start <= region.start
                    && granted.start + granted.len >= region.start + region.len
            })
        })
    }

    /// Successful writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Rejected write attempts so far (an audit signal for the threat
    /// detector).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Writes a validated bitstream into a fully *disabled* region.
    ///
    /// Returns the cycles the write occupied the port.
    ///
    /// # Errors
    /// [`IcapError`] for ACL, bounds, validation, or state violations.
    pub fn write(
        &mut self,
        fabric: &mut FpgaFabric,
        principal: Principal,
        region: Region,
        bitstream: &Bitstream,
    ) -> Result<u64, IcapError> {
        let check = || -> Result<(), IcapError> {
            if !fabric.contains(region) {
                return Err(IcapError::OutOfBounds);
            }
            if !self.permits(principal, region) {
                return Err(IcapError::AccessDenied);
            }
            if !bitstream.verify(region, &self.key) {
                return Err(IcapError::InvalidBitstream);
            }
            for f in region.frames() {
                if matches!(fabric.frame_state(f), FrameState::Active(_)) {
                    return Err(IcapError::RegionEnabled);
                }
            }
            Ok(())
        };
        if let Err(e) = check() {
            self.rejected += 1;
            return Err(e);
        }
        fabric.write_words(region, &bitstream.words);
        self.writes += 1;
        Ok(bitstream.words.len() as u64 * CYCLES_PER_WORD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FpgaFabric, Icap, MacKey) {
        let key = MacKey::derive(9, "icap");
        (FpgaFabric::new(4, 4, 4), Icap::new(key.clone()), key)
    }

    #[test]
    fn write_requires_grant() {
        let (mut fabric, mut icap, key) = setup();
        let r = Region::new(0, 2);
        let bs = Bitstream::for_variant(1, r, 4, &key);
        assert_eq!(icap.write(&mut fabric, Principal(0), r, &bs), Err(IcapError::AccessDenied));
        icap.allow(Principal(0), r);
        assert!(icap.write(&mut fabric, Principal(0), r, &bs).is_ok());
        assert_eq!(icap.writes(), 1);
        assert_eq!(icap.rejected(), 1);
    }

    #[test]
    fn grant_covers_subregions_only() {
        let (mut fabric, mut icap, key) = setup();
        icap.allow(Principal(0), Region::new(0, 4));
        let sub = Region::new(1, 2);
        let bs = Bitstream::for_variant(1, sub, 4, &key);
        assert!(icap.write(&mut fabric, Principal(0), sub, &bs).is_ok());
        let outside = Region::new(3, 2);
        let bs2 = Bitstream::for_variant(1, outside, 4, &key);
        assert_eq!(
            icap.write(&mut fabric, Principal(0), outside, &bs2),
            Err(IcapError::AccessDenied)
        );
    }

    #[test]
    fn rejects_invalid_bitstream() {
        let (mut fabric, mut icap, key) = setup();
        let r = Region::new(0, 2);
        icap.allow(Principal(0), r);
        let mut bs = Bitstream::for_variant(1, r, 4, &key);
        bs.words[0] ^= 0xFF;
        assert_eq!(icap.write(&mut fabric, Principal(0), r, &bs), Err(IcapError::InvalidBitstream));
    }

    #[test]
    fn rejects_forged_signature() {
        let (mut fabric, mut icap, _) = setup();
        let r = Region::new(0, 2);
        icap.allow(Principal(0), r);
        // Signed by an attacker's key, not the ICAP's.
        let bs = Bitstream::for_variant(1, r, 4, &MacKey::derive(666, "attacker"));
        assert_eq!(icap.write(&mut fabric, Principal(0), r, &bs), Err(IcapError::InvalidBitstream));
    }

    #[test]
    fn rejects_enabled_region_and_out_of_bounds() {
        let (mut fabric, mut icap, key) = setup();
        let r = Region::new(0, 2);
        icap.allow(Principal(0), r);
        fabric.set_state(r, FrameState::Active(7));
        let bs = Bitstream::for_variant(1, r, 4, &key);
        assert_eq!(icap.write(&mut fabric, Principal(0), r, &bs), Err(IcapError::RegionEnabled));

        let far = Region::new(15, 4);
        icap.allow(Principal(0), far);
        let bs2 = Bitstream::for_variant(1, far, 4, &key);
        assert_eq!(icap.write(&mut fabric, Principal(0), far, &bs2), Err(IcapError::OutOfBounds));
    }

    #[test]
    fn revocation_takes_effect() {
        let (mut fabric, mut icap, key) = setup();
        let r = Region::new(0, 2);
        icap.allow(Principal(3), r);
        icap.revoke(Principal(3), r);
        let bs = Bitstream::for_variant(1, r, 4, &key);
        assert_eq!(icap.write(&mut fabric, Principal(3), r, &bs), Err(IcapError::AccessDenied));
        icap.allow(Principal(3), r);
        icap.revoke_all(Principal(3));
        assert!(!icap.permits(Principal(3), r));
    }
}
