//! The configuration-frame grid.

use rsoc_sim::SimRng;
use std::collections::BTreeMap;

/// Identifier of one configuration frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u32);

/// Identifier of a configured logic block (softcore, accelerator, ...).
pub type BlockId = u64;

/// Lifecycle state of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameState {
    /// Unconfigured.
    #[default]
    Empty,
    /// Part of an enabled block.
    Active(BlockId),
    /// Configured but gated off (during reconfiguration).
    Disabled,
}

/// A contiguous run of frames (the unit of partial reconfiguration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Region {
    /// First frame index.
    pub start: u32,
    /// Number of frames.
    pub len: u32,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn new(start: u32, len: u32) -> Self {
        assert!(len > 0, "region must be non-empty");
        Region { start, len }
    }

    /// Frame ids covered.
    pub fn frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        (self.start..self.start + self.len).map(FrameId)
    }

    /// Whether two regions share any frame.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.start < other.start + other.len && other.start < self.start + self.len
    }
}

#[derive(Debug, Clone, Default)]
struct Frame {
    words: Vec<u64>,
    state: FrameState,
    backdoored: bool,
}

/// The grid fabric: `rows × cols` frames, each holding `frame_words`
/// configuration words.
#[derive(Debug, Clone)]
pub struct FpgaFabric {
    rows: u32,
    cols: u32,
    frame_words: usize,
    frames: Vec<Frame>,
    /// Where each enabled block lives.
    placements: BTreeMap<BlockId, Region>,
}

impl FpgaFabric {
    /// Creates an empty fabric.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(rows: u32, cols: u32, frame_words: usize) -> Self {
        assert!(rows > 0 && cols > 0 && frame_words > 0, "fabric dims must be positive");
        FpgaFabric {
            rows,
            cols,
            frame_words,
            frames: vec![
                Frame { words: vec![0; frame_words], ..Default::default() };
                (rows * cols) as usize
            ],
            placements: BTreeMap::new(),
        }
    }

    /// Total frame count.
    pub fn frame_count(&self) -> u32 {
        self.rows * self.cols
    }

    /// Words per frame.
    pub fn frame_words(&self) -> usize {
        self.frame_words
    }

    /// State of a frame.
    ///
    /// # Panics
    /// Panics for out-of-range frames.
    pub fn frame_state(&self, frame: FrameId) -> FrameState {
        self.frames[frame.0 as usize].state
    }

    /// Configuration words of a frame (readback).
    ///
    /// # Panics
    /// Panics for out-of-range frames.
    pub fn readback(&self, frame: FrameId) -> &[u64] {
        &self.frames[frame.0 as usize].words
    }

    /// Whether `region` fits inside the fabric.
    pub fn contains(&self, region: Region) -> bool {
        region.start + region.len <= self.frame_count()
    }

    /// Plants hidden backdoors: each frame independently with probability
    /// `density` (supply-chain attack on the grid fabric, §II-C).
    pub fn plant_backdoors(&mut self, density: f64, rng: &mut SimRng) {
        for f in &mut self.frames {
            if rng.chance(density) {
                f.backdoored = true;
            }
        }
    }

    /// Marks one specific frame backdoored (for deterministic tests).
    ///
    /// # Panics
    /// Panics for out-of-range frames.
    pub fn plant_backdoor_at(&mut self, frame: FrameId) {
        self.frames[frame.0 as usize].backdoored = true;
    }

    /// Number of backdoored frames (inspection for experiments; a real
    /// operator cannot see this).
    pub fn backdoor_count(&self) -> usize {
        self.frames.iter().filter(|f| f.backdoored).count()
    }

    /// Whether a block placed over `region` lands on a backdoored frame —
    /// i.e., whether the hidden logic can observe/tamper with the block.
    pub fn region_backdoored(&self, region: Region) -> bool {
        region.frames().any(|f| self.frames[f.0 as usize].backdoored)
    }

    /// Where a block is currently placed.
    pub fn block_region(&self, block: BlockId) -> Option<Region> {
        self.placements.get(&block).copied()
    }

    /// All placements.
    pub fn placements(&self) -> &BTreeMap<BlockId, Region> {
        &self.placements
    }

    /// Finds the lowest-starting fully `Empty` region of `len` frames.
    pub fn find_free_region(&self, len: u32) -> Option<Region> {
        if len == 0 || len > self.frame_count() {
            return None;
        }
        'outer: for start in 0..=(self.frame_count() - len) {
            for i in start..start + len {
                if self.frames[i as usize].state != FrameState::Empty {
                    continue 'outer;
                }
            }
            return Some(Region::new(start, len));
        }
        None
    }

    /// All fully `Empty` regions of exactly `len` frames (non-overlapping
    /// scan from 0), for random placement policies.
    pub fn free_regions(&self, len: u32) -> Vec<Region> {
        let mut out = Vec::new();
        if len == 0 || len > self.frame_count() {
            return out;
        }
        let mut start = 0;
        while start + len <= self.frame_count() {
            let all_free =
                (start..start + len).all(|i| self.frames[i as usize].state == FrameState::Empty);
            if all_free {
                out.push(Region::new(start, len));
                start += len;
            } else {
                start += 1;
            }
        }
        out
    }

    pub(crate) fn set_state(&mut self, region: Region, state: FrameState) {
        for f in region.frames() {
            self.frames[f.0 as usize].state = state;
        }
    }

    pub(crate) fn write_words(&mut self, region: Region, words: &[u64]) {
        for (i, f) in region.frames().enumerate() {
            let frame = &mut self.frames[f.0 as usize];
            frame.words.copy_from_slice(&words[i * self.frame_words..(i + 1) * self.frame_words]);
        }
    }

    pub(crate) fn place(&mut self, block: BlockId, region: Region) {
        self.placements.insert(block, region);
    }

    pub(crate) fn unplace(&mut self, block: BlockId) {
        self.placements.remove(&block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_fabric_is_empty() {
        let f = FpgaFabric::new(4, 4, 8);
        assert_eq!(f.frame_count(), 16);
        for i in 0..16 {
            assert_eq!(f.frame_state(FrameId(i)), FrameState::Empty);
            assert_eq!(f.readback(FrameId(i)), &[0u64; 8]);
        }
        assert_eq!(f.backdoor_count(), 0);
    }

    #[test]
    fn region_geometry() {
        let r = Region::new(4, 3);
        let frames: Vec<u32> = r.frames().map(|f| f.0).collect();
        assert_eq!(frames, vec![4, 5, 6]);
        assert!(r.overlaps(&Region::new(6, 2)));
        assert!(!r.overlaps(&Region::new(7, 2)));
        assert!(r.overlaps(&Region::new(0, 5)));
    }

    #[test]
    fn free_region_search_skips_occupied() {
        let mut f = FpgaFabric::new(2, 4, 4);
        f.set_state(Region::new(0, 2), FrameState::Active(1));
        let free = f.find_free_region(3).unwrap();
        assert_eq!(free.start, 2);
        assert!(f.find_free_region(7).is_none());
        assert_eq!(f.free_regions(2).len(), 3);
    }

    #[test]
    fn backdoors_affect_covering_regions_only() {
        let mut f = FpgaFabric::new(2, 4, 4);
        f.plant_backdoor_at(FrameId(5));
        assert!(f.region_backdoored(Region::new(4, 2)));
        assert!(f.region_backdoored(Region::new(5, 1)));
        assert!(!f.region_backdoored(Region::new(0, 4)));
        assert_eq!(f.backdoor_count(), 1);
    }

    #[test]
    fn random_backdoor_density() {
        let mut f = FpgaFabric::new(10, 10, 1);
        let mut rng = SimRng::new(3);
        f.plant_backdoors(0.25, &mut rng);
        let count = f.backdoor_count();
        assert!((10..=40).contains(&count), "density wildly off: {count}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_region() {
        Region::new(0, 0);
    }
}
