//! Internal, partial, dynamic reconfiguration: disable → write →
//! readback-validate → enable, plus block relocation and spatial
//! rejuvenation.

use crate::bitstream::Bitstream;
use crate::fabric::{BlockId, FpgaFabric, FrameState, Region};
use crate::icap::{Icap, IcapError, Principal};
use std::fmt;

/// Cycles to gate a region off or on.
const CYCLES_GATE: u64 = 8;
/// Cycles per frame for readback validation.
const CYCLES_VALIDATE_FRAME: u64 = 16;

/// Reconfiguration errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigError {
    /// The underlying ICAP write failed.
    Icap(IcapError),
    /// Readback after writing did not match the bitstream (configuration
    /// memory upset during write).
    ReadbackMismatch,
    /// The named block is not placed anywhere.
    UnknownBlock,
    /// Destination region unusable (occupied or out of bounds).
    DestinationUnavailable,
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::Icap(e) => write!(f, "icap: {e}"),
            ReconfigError::ReadbackMismatch => write!(f, "readback validation failed"),
            ReconfigError::UnknownBlock => write!(f, "unknown block"),
            ReconfigError::DestinationUnavailable => write!(f, "destination region unavailable"),
        }
    }
}

impl std::error::Error for ReconfigError {}

impl From<IcapError> for ReconfigError {
    fn from(e: IcapError) -> Self {
        ReconfigError::Icap(e)
    }
}

/// Receipt of a completed reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigReceipt {
    /// Total cycles the operation took (the block's downtime).
    pub cycles: u64,
    /// Frames rewritten.
    pub frames_written: u32,
}

/// The reconfiguration engine: owns the fabric and its ICAP.
///
/// Reconfiguration is *partial and dynamic*: only the target region's
/// frames change state; everything else keeps running (verified by the
/// `other_blocks_undisturbed` test).
#[derive(Debug)]
pub struct ReconfigEngine {
    fabric: FpgaFabric,
    icap: Icap,
}

impl ReconfigEngine {
    /// Creates an engine.
    pub fn new(fabric: FpgaFabric, icap: Icap) -> Self {
        ReconfigEngine { fabric, icap }
    }

    /// The fabric (read-only).
    pub fn fabric(&self) -> &FpgaFabric {
        &self.fabric
    }

    /// The ICAP (for ACL management by the privilege gate).
    pub fn icap_mut(&mut self) -> &mut Icap {
        &mut self.icap
    }

    /// The ICAP (read-only).
    pub fn icap(&self) -> &Icap {
        &self.icap
    }

    /// Full partial-dynamic reconfiguration of `region` with `bitstream`,
    /// enabling it as `block` afterwards.
    ///
    /// # Errors
    /// [`ReconfigError`] on ACL/validation/readback failures. On error the
    /// region is left disabled (fail-safe), never half-enabled.
    pub fn reconfigure(
        &mut self,
        principal: Principal,
        region: Region,
        bitstream: &Bitstream,
        block: BlockId,
    ) -> Result<ReconfigReceipt, ReconfigError> {
        // 1. Disable (critical operation — in the resilient design this is
        //    only reachable through the voted gate, see rsoc-soc).
        if let Some(old) = self.block_at(region) {
            self.fabric.unplace(old);
        }
        self.fabric.set_state(region, FrameState::Disabled);
        let mut cycles = CYCLES_GATE;

        // 2. Write through the access-controlled port.
        cycles += self.icap.write(&mut self.fabric, principal, region, bitstream)?;

        // 3. Readback validation.
        cycles += region.len as u64 * CYCLES_VALIDATE_FRAME;
        let fw = self.fabric.frame_words();
        for (i, f) in region.frames().enumerate() {
            if self.fabric.readback(f) != &bitstream.words[i * fw..(i + 1) * fw] {
                return Err(ReconfigError::ReadbackMismatch);
            }
        }

        // 4. Enable.
        self.fabric.set_state(region, FrameState::Active(block));
        self.fabric.place(block, region);
        cycles += CYCLES_GATE;
        Ok(ReconfigReceipt { cycles, frames_written: region.len })
    }

    /// Relocates `block` to `to`, re-targeting its current configuration
    /// (spatial rejuvenation, §II-C: "rejuvenate to diverse softcore
    /// variants that are loaded in different FPGA spatial locations").
    ///
    /// # Errors
    /// [`ReconfigError::UnknownBlock`] /
    /// [`ReconfigError::DestinationUnavailable`] / write errors.
    pub fn relocate(
        &mut self,
        principal: Principal,
        block: BlockId,
        to: Region,
    ) -> Result<ReconfigReceipt, ReconfigError> {
        let from = self.fabric.block_region(block).ok_or(ReconfigError::UnknownBlock)?;
        if !self.fabric.contains(to) || from.overlaps(&to) {
            return Err(ReconfigError::DestinationUnavailable);
        }
        for f in to.frames() {
            if self.fabric.frame_state(f) != FrameState::Empty {
                return Err(ReconfigError::DestinationUnavailable);
            }
        }
        // Rebuild the block's bitstream from current configuration.
        let fw = self.fabric.frame_words();
        let mut words = Vec::with_capacity(from.len as usize * fw);
        for f in from.frames() {
            words.extend_from_slice(self.fabric.readback(f));
        }
        let current = Bitstream::build(words, from, fw, self.icap.key());
        let moved = current.retarget(to, self.icap.key());

        let receipt = self.reconfigure(principal, to, &moved, block)?;
        // Free the old site.
        self.fabric.set_state(from, FrameState::Empty);
        self.fabric.place(block, to);
        Ok(ReconfigReceipt {
            cycles: receipt.cycles + CYCLES_GATE,
            frames_written: receipt.frames_written,
        })
    }

    /// Decommissions `block`: gates its region off and frees the frames
    /// (used before re-instantiating the block elsewhere with a fresh
    /// variant — spatial rejuvenation).
    ///
    /// # Errors
    /// [`ReconfigError::UnknownBlock`] if the block is not placed;
    /// [`ReconfigError::Icap`] ([`IcapError::AccessDenied`]) if `principal`
    /// lacks rights over the block's region.
    pub fn decommission(
        &mut self,
        principal: Principal,
        block: BlockId,
    ) -> Result<Region, ReconfigError> {
        let region = self.fabric.block_region(block).ok_or(ReconfigError::UnknownBlock)?;
        if !self.icap.permits(principal, region) {
            return Err(ReconfigError::Icap(IcapError::AccessDenied));
        }
        self.fabric.set_state(region, FrameState::Empty);
        self.fabric.unplace(block);
        Ok(region)
    }

    fn block_at(&self, region: Region) -> Option<BlockId> {
        self.fabric.placements().iter().find(|(_, r)| r.overlaps(&region)).map(|(b, _)| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsoc_crypto::MacKey;

    fn engine() -> (ReconfigEngine, MacKey) {
        let key = MacKey::derive(21, "rc");
        let fabric = FpgaFabric::new(4, 4, 4);
        let mut icap = Icap::new(key.clone());
        icap.allow(Principal(0), Region::new(0, 16));
        (ReconfigEngine::new(fabric, icap), key)
    }

    #[test]
    fn reconfigure_activates_block() {
        let (mut e, key) = engine();
        let r = Region::new(0, 3);
        let bs = Bitstream::for_variant(5, r, 4, &key);
        let receipt = e.reconfigure(Principal(0), r, &bs, 100).unwrap();
        assert_eq!(receipt.frames_written, 3);
        assert!(receipt.cycles > 0);
        for f in r.frames() {
            assert_eq!(e.fabric().frame_state(f), FrameState::Active(100));
        }
        assert_eq!(e.fabric().block_region(100), Some(r));
    }

    #[test]
    fn other_blocks_undisturbed() {
        // The "partial and dynamic" property: reconfiguring region B leaves
        // region A's configuration and state untouched.
        let (mut e, key) = engine();
        let a = Region::new(0, 2);
        let b = Region::new(4, 2);
        e.reconfigure(Principal(0), a, &Bitstream::for_variant(1, a, 4, &key), 1).unwrap();
        let snapshot: Vec<Vec<u64>> = a.frames().map(|f| e.fabric().readback(f).to_vec()).collect();
        e.reconfigure(Principal(0), b, &Bitstream::for_variant(2, b, 4, &key), 2).unwrap();
        for (i, f) in a.frames().enumerate() {
            assert_eq!(e.fabric().frame_state(f), FrameState::Active(1));
            assert_eq!(e.fabric().readback(f), &snapshot[i][..]);
        }
    }

    #[test]
    fn failed_write_leaves_region_disabled_not_enabled() {
        let (mut e, _) = engine();
        let r = Region::new(0, 2);
        // Bitstream signed with the wrong key fails at the ICAP.
        let bad = Bitstream::for_variant(5, r, 4, &MacKey::derive(99, "evil"));
        let err = e.reconfigure(Principal(0), r, &bad, 7).unwrap_err();
        assert_eq!(err, ReconfigError::Icap(IcapError::InvalidBitstream));
        for f in r.frames() {
            assert_eq!(e.fabric().frame_state(f), FrameState::Disabled, "fail-safe state");
        }
    }

    #[test]
    fn rewriting_replaces_previous_block() {
        let (mut e, key) = engine();
        let r = Region::new(0, 2);
        e.reconfigure(Principal(0), r, &Bitstream::for_variant(1, r, 4, &key), 1).unwrap();
        e.reconfigure(Principal(0), r, &Bitstream::for_variant(2, r, 4, &key), 2).unwrap();
        assert_eq!(e.fabric().block_region(1), None, "old block evicted");
        assert_eq!(e.fabric().block_region(2), Some(r));
    }

    #[test]
    fn relocation_moves_configuration() {
        let (mut e, key) = engine();
        let from = Region::new(0, 2);
        let to = Region::new(8, 2);
        let bs = Bitstream::for_variant(7, from, 4, &key);
        e.reconfigure(Principal(0), from, &bs, 42).unwrap();
        let words_before: Vec<u64> =
            from.frames().flat_map(|f| e.fabric().readback(f).to_vec()).collect();
        e.relocate(Principal(0), 42, to).unwrap();
        assert_eq!(e.fabric().block_region(42), Some(to));
        for f in from.frames() {
            assert_eq!(e.fabric().frame_state(f), FrameState::Empty, "old site freed");
        }
        let words_after: Vec<u64> =
            to.frames().flat_map(|f| e.fabric().readback(f).to_vec()).collect();
        assert_eq!(words_before, words_after, "configuration carried over");
    }

    #[test]
    fn relocation_rejects_bad_destinations() {
        let (mut e, key) = engine();
        let from = Region::new(0, 2);
        e.reconfigure(Principal(0), from, &Bitstream::for_variant(7, from, 4, &key), 42).unwrap();
        assert_eq!(
            e.relocate(Principal(0), 42, Region::new(1, 2)),
            Err(ReconfigError::DestinationUnavailable),
            "overlapping destination"
        );
        assert_eq!(
            e.relocate(Principal(0), 42, Region::new(15, 2)),
            Err(ReconfigError::DestinationUnavailable),
            "out of bounds"
        );
        assert_eq!(
            e.relocate(Principal(0), 99, Region::new(8, 2)),
            Err(ReconfigError::UnknownBlock)
        );
        // Occupied destination.
        let other = Region::new(8, 2);
        e.reconfigure(Principal(0), other, &Bitstream::for_variant(1, other, 4, &key), 1).unwrap();
        assert_eq!(e.relocate(Principal(0), 42, other), Err(ReconfigError::DestinationUnavailable));
    }

    #[test]
    fn unauthorized_principal_cannot_reconfigure() {
        let (mut e, key) = engine();
        let r = Region::new(0, 2);
        let bs = Bitstream::for_variant(5, r, 4, &key);
        let err = e.reconfigure(Principal(9), r, &bs, 7).unwrap_err();
        assert_eq!(err, ReconfigError::Icap(IcapError::AccessDenied));
        assert_eq!(e.icap().rejected(), 1);
    }
}
