//! Authenticated configuration bitstreams.
//!
//! A bitstream is bound to its target region (no replay onto other
//! frames), integrity-checked with CRC-32 (accidental corruption) and
//! authenticated with HMAC (malicious substitution) — the §II-E requirement
//! of "validating that a correct bitstream is written".

use crate::fabric::Region;
use rsoc_crypto::{MacKey, Tag};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) over bytes.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A configuration payload for one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    /// Target region (bound into the signature).
    pub region: Region,
    /// Configuration words (`region.len * frame_words`).
    pub words: Vec<u64>,
    /// CRC-32 over the words.
    pub crc: u32,
    /// HMAC over `(region, crc, words)`.
    pub tag: Tag,
}

impl Bitstream {
    /// Builds and signs a bitstream for `region`.
    ///
    /// # Panics
    /// Panics if `words.len() != region.len * frame_words`.
    pub fn build(words: Vec<u64>, region: Region, frame_words: usize, key: &MacKey) -> Self {
        assert_eq!(
            words.len(),
            region.len as usize * frame_words,
            "word count must match region capacity"
        );
        let bytes = words_bytes(&words);
        let crc = crc32(&bytes);
        let tag = key.mac(&signing_payload(region, crc, &bytes));
        Bitstream { region, words, crc, tag }
    }

    /// Deterministic synthetic bitstream for a softcore `variant`
    /// (different variants → different configuration contents), used by the
    /// rejuvenation/relocation experiments.
    pub fn for_variant(variant: u64, region: Region, frame_words: usize, key: &MacKey) -> Self {
        let n = region.len as usize * frame_words;
        let words: Vec<u64> = (0..n)
            .map(|i| {
                let mut x = variant.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
                x ^= x >> 31;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^ (x >> 29)
            })
            .collect();
        Self::build(words, region, frame_words, key)
    }

    /// Re-targets this bitstream to a different region of the same size
    /// (relocation), re-signing with `key`.
    ///
    /// # Panics
    /// Panics if the new region has a different length.
    pub fn retarget(&self, to: Region, key: &MacKey) -> Bitstream {
        assert_eq!(self.region.len, to.len, "relocation requires equal region sizes");
        let bytes = words_bytes(&self.words);
        let tag = key.mac(&signing_payload(to, self.crc, &bytes));
        Bitstream { region: to, words: self.words.clone(), crc: self.crc, tag }
    }

    /// Full validation: CRC matches the words and the HMAC matches
    /// `(region, crc, words)` under `key`, and the claimed region equals
    /// the region being written.
    pub fn verify(&self, target: Region, key: &MacKey) -> bool {
        if self.region != target {
            return false;
        }
        let bytes = words_bytes(&self.words);
        if crc32(&bytes) != self.crc {
            return false;
        }
        key.verify(&signing_payload(self.region, self.crc, &bytes), &self.tag)
    }
}

fn words_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn signing_payload(region: Region, crc: u32, bytes: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(12 + bytes.len());
    p.extend_from_slice(&region.start.to_le_bytes());
    p.extend_from_slice(&region.len.to_le_bytes());
    p.extend_from_slice(&crc.to_le_bytes());
    p.extend_from_slice(bytes);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_reference_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    fn key() -> MacKey {
        MacKey::derive(5, "bs")
    }

    #[test]
    fn build_and_verify() {
        let r = Region::new(2, 3);
        let bs = Bitstream::for_variant(9, r, 4, &key());
        assert_eq!(bs.words.len(), 12);
        assert!(bs.verify(r, &key()));
    }

    #[test]
    fn verification_rejects_wrong_region_key_or_corruption() {
        let r = Region::new(2, 3);
        let bs = Bitstream::for_variant(9, r, 4, &key());
        assert!(!bs.verify(Region::new(3, 3), &key()), "region binding");
        assert!(!bs.verify(r, &MacKey::derive(6, "bs")), "key binding");
        let mut corrupted = bs.clone();
        corrupted.words[0] ^= 1;
        assert!(!corrupted.verify(r, &key()), "CRC catches corruption");
        let mut resigned = bs.clone();
        resigned.crc ^= 1;
        assert!(!resigned.verify(r, &key()), "CRC/tag mismatch");
    }

    #[test]
    fn variants_produce_distinct_contents() {
        let r = Region::new(0, 2);
        let a = Bitstream::for_variant(1, r, 4, &key());
        let b = Bitstream::for_variant(2, r, 4, &key());
        assert_ne!(a.words, b.words);
    }

    #[test]
    fn retarget_preserves_words_and_verifies_at_new_region() {
        let from = Region::new(0, 2);
        let to = Region::new(6, 2);
        let bs = Bitstream::for_variant(3, from, 4, &key());
        let moved = bs.retarget(to, &key());
        assert_eq!(moved.words, bs.words);
        assert!(moved.verify(to, &key()));
        assert!(!moved.verify(from, &key()));
    }

    #[test]
    #[should_panic(expected = "equal region sizes")]
    fn retarget_rejects_size_mismatch() {
        let bs = Bitstream::for_variant(3, Region::new(0, 2), 4, &key());
        bs.retarget(Region::new(4, 3), &key());
    }
}
