//! The tile inventory and protocol-run orchestration.

use crate::tile::{Tile, TileHealth, TileId};
use rsoc_adapt::ProtocolChoice;
use rsoc_bft::adversary::Behavior;
use rsoc_bft::api::Cluster;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run, LatencyModel, RunConfig, RunReport};
use rsoc_bft::ReplicaId;
use rsoc_diversity::{PoolConfig, VariantPool};
use rsoc_noc::Mesh2d;
use rsoc_sim::SimRng;

/// SoC construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocConfig {
    /// Mesh width (tiles per row).
    pub mesh_width: u16,
    /// Mesh height.
    pub mesh_height: u16,
    /// Seed for variant generation and workload randomness.
    pub seed: u64,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig { mesh_width: 4, mesh_height: 4, seed: 1 }
    }
}

/// The manycore SoC: one tile per mesh node, diverse variants, and the
/// machinery to run replicated workloads across tiles.
#[derive(Debug)]
pub struct ResilientSoc {
    config: SocConfig,
    mesh: Mesh2d,
    tiles: Vec<Tile>,
    pool: VariantPool,
    rng: SimRng,
}

impl ResilientSoc {
    /// Builds the SoC with a diverse initial variant assignment
    /// (round-robin across the pool's initial variants).
    pub fn new(config: SocConfig) -> Self {
        let mesh = Mesh2d::new(config.mesh_width, config.mesh_height);
        let mut rng = SimRng::new(config.seed);
        let pool = VariantPool::generate(PoolConfig::default(), &mut rng);
        let initial = pool.config().initial_variants;
        let tiles = mesh
            .nodes()
            .enumerate()
            .map(|(i, node)| {
                let c = mesh.coord(node);
                Tile::new(
                    TileId(i as u32),
                    (c.x, c.y),
                    rsoc_diversity::VariantId(i as u32 % initial),
                )
            })
            .collect();
        ResilientSoc { config, mesh, tiles, pool, rng }
    }

    /// The construction parameters.
    pub fn config(&self) -> SocConfig {
        self.config
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh2d {
        &self.mesh
    }

    /// All tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Mutable tile access (fault injection, rejuvenation).
    ///
    /// # Panics
    /// Panics for out-of-range ids.
    pub fn tile_mut(&mut self, id: TileId) -> &mut Tile {
        &mut self.tiles[id.0 as usize]
    }

    /// The variant pool (shared with the manager for diverse rejuvenation).
    pub fn pool_mut(&mut self) -> &mut VariantPool {
        &mut self.pool
    }

    /// The SoC-level RNG (forked per use for determinism).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Marks a tile crashed.
    pub fn crash_tile(&mut self, id: TileId) {
        self.tile_mut(id).health = TileHealth::Crashed;
    }

    /// Marks a tile adversary-controlled.
    pub fn compromise_tile(&mut self, id: TileId) {
        self.tile_mut(id).health = TileHealth::Compromised;
    }

    /// Chooses the replica tiles for a deployment of `n` replicas:
    /// healthy-first, then (to model undetected intrusions) compromised
    /// tiles — crashed tiles are always skipped because placement knows a
    /// dead tile when it sees one. Returns `None` when fewer than `n`
    /// non-crashed tiles exist.
    pub fn select_replica_tiles(&self, n: usize) -> Option<Vec<TileId>> {
        let mut chosen: Vec<TileId> = self
            .tiles
            .iter()
            .filter(|t| t.health == TileHealth::Healthy)
            .map(|t| t.id)
            .take(n)
            .collect();
        if chosen.len() < n {
            let more: Vec<TileId> = self
                .tiles
                .iter()
                .filter(|t| t.health == TileHealth::Compromised && !chosen.contains(&t.id))
                .map(|t| t.id)
                .take(n - chosen.len())
                .collect();
            chosen.extend(more);
        }
        (chosen.len() == n).then_some(chosen)
    }

    /// Builds the NoC latency model for a replica placement.
    fn latency_for(&self, placement: &[TileId]) -> LatencyModel {
        LatencyModel::MeshHops {
            replica_at: placement.iter().map(|t| self.tiles[t.0 as usize].coord).collect(),
            client_at: (0, 0),
            per_hop: 1,
            overhead: 3,
        }
    }

    /// Runs a replicated workload over the SoC: picks replica tiles, maps
    /// tile health to protocol behaviours (compromised → Byzantine,
    /// crashed → excluded by placement), and executes the chosen protocol
    /// with NoC-hop latencies.
    ///
    /// # Panics
    /// Panics when not enough non-crashed tiles exist for the deployment.
    pub fn run_workload(
        &mut self,
        protocol: ProtocolChoice,
        f: u32,
        clients: u32,
        requests_per_client: u64,
    ) -> RunReport {
        let n = protocol.replicas_for(f) as usize;
        let placement =
            self.select_replica_tiles(n).expect("not enough usable tiles for deployment");
        let seed = self.rng.next_u64();
        let config = RunConfig::builder()
            .f(f)
            .clients(clients)
            .requests_per_client(requests_per_client)
            .seed(seed)
            .latency(self.latency_for(&placement))
            .max_cycles(20_000_000)
            .build();
        // Compromised tiles run Byzantine replicas; the protocol must mask them.
        let byz: Vec<ReplicaId> = placement
            .iter()
            .enumerate()
            .filter(|(_, t)| self.tiles[t.0 as usize].health == TileHealth::Compromised)
            .map(|(i, _)| ReplicaId(i as u32))
            .collect();
        match protocol {
            ProtocolChoice::Pbft => {
                let mut cluster = PbftCluster::new(&config);
                for r in &byz {
                    cluster.set_script(*r, Behavior::Equivocate.into());
                }
                run(&mut cluster, &config)
            }
            ProtocolChoice::MinBft => {
                let mut cluster = MinBftCluster::new(&config);
                for r in &byz {
                    cluster.set_script(*r, Behavior::ForgeUi.into());
                }
                run(&mut cluster, &config)
            }
            ProtocolChoice::Passive => {
                let mut cluster = PassiveCluster::new(&config);
                // Passive has no Byzantine mode; a compromised tile behaves
                // as silent (it cannot forge the absent MACs profitably in
                // this model, but it withholds service).
                for r in &byz {
                    cluster.set_script(*r, Behavior::Silent.into());
                }
                run(&mut cluster, &config)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soc_builds_diverse_tiles() {
        let soc = ResilientSoc::new(SocConfig::default());
        assert_eq!(soc.tiles().len(), 16);
        let distinct: std::collections::BTreeSet<_> =
            soc.tiles().iter().map(|t| t.variant).collect();
        assert!(distinct.len() >= 4, "initial assignment is diverse");
    }

    #[test]
    fn minbft_workload_runs_over_noc() {
        let mut soc = ResilientSoc::new(SocConfig { seed: 3, ..Default::default() });
        let report = soc.run_workload(ProtocolChoice::MinBft, 1, 2, 5);
        assert_eq!(report.committed, 10);
        assert!(report.safety_ok);
        assert_eq!(report.n_replicas, 3);
    }

    #[test]
    fn pbft_workload_masks_compromised_tile() {
        let mut soc = ResilientSoc::new(SocConfig { seed: 4, ..Default::default() });
        soc.compromise_tile(TileId(0));
        let report = soc.run_workload(ProtocolChoice::Pbft, 1, 1, 5);
        assert!(report.safety_ok, "one Byzantine tile must be masked at f=1");
        assert_eq!(report.committed, 5);
    }

    #[test]
    fn placement_skips_crashed_tiles() {
        let mut soc = ResilientSoc::new(SocConfig::default());
        soc.crash_tile(TileId(0));
        soc.crash_tile(TileId(1));
        let placement = soc.select_replica_tiles(4).unwrap();
        assert!(!placement.contains(&TileId(0)));
        assert!(!placement.contains(&TileId(1)));
    }

    #[test]
    fn placement_fails_when_chip_exhausted() {
        let mut soc = ResilientSoc::new(SocConfig { mesh_width: 2, mesh_height: 2, seed: 1 });
        for i in 0..3 {
            soc.crash_tile(TileId(i));
        }
        assert!(soc.select_replica_tiles(2).is_none());
    }

    #[test]
    fn passive_workload_runs() {
        let mut soc = ResilientSoc::new(SocConfig { seed: 5, ..Default::default() });
        let report = soc.run_workload(ProtocolChoice::Passive, 1, 1, 5);
        assert_eq!(report.committed, 5);
        assert_eq!(report.n_replicas, 2);
    }
}
