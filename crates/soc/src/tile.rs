//! Processing tiles of the manycore SoC.

use rsoc_diversity::VariantId;
use std::fmt;

/// Tile identifier (dense, row-major over the mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u32);

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Health of a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileHealth {
    /// Operating normally.
    #[default]
    Healthy,
    /// Benign fail-stop (aging, overheat, power).
    Crashed,
    /// Under adversary control (Byzantine).
    Compromised,
}

/// One tile: mesh position, software variant, health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Identity.
    pub id: TileId,
    /// Mesh coordinate (x, y).
    pub coord: (u16, u16),
    /// Implementation variant currently running.
    pub variant: VariantId,
    /// Current health.
    pub health: TileHealth,
    /// Epochs since last rejuvenation (aging proxy).
    pub age: u32,
}

impl Tile {
    /// Creates a healthy tile.
    pub fn new(id: TileId, coord: (u16, u16), variant: VariantId) -> Self {
        Tile { id, coord, variant, health: TileHealth::Healthy, age: 0 }
    }

    /// Whether the tile can host a correct replica.
    pub fn usable(&self) -> bool {
        self.health == TileHealth::Healthy
    }

    /// Rejuvenates the tile onto `variant`: health restored, age reset.
    pub fn rejuvenate(&mut self, variant: VariantId) {
        self.variant = variant;
        self.health = TileHealth::Healthy;
        self.age = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = Tile::new(TileId(3), (1, 2), VariantId(0));
        assert!(t.usable());
        t.health = TileHealth::Compromised;
        t.age = 9;
        assert!(!t.usable());
        t.rejuvenate(VariantId(5));
        assert!(t.usable());
        assert_eq!(t.variant, VariantId(5));
        assert_eq!(t.age, 0);
    }

    #[test]
    fn crashed_is_unusable() {
        let mut t = Tile::new(TileId(0), (0, 0), VariantId(0));
        t.health = TileHealth::Crashed;
        assert!(!t.usable());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", TileId(7)), "t7");
    }
}
