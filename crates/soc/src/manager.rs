//! The epoch control loop: detector → controller → workload → voted
//! rejuvenation/relocation. This is the vertical integration the paper
//! sketches in Fig. 1 and experiment **F1** ablates.

use crate::privilege::{PrivilegeGate, PrivilegedOp, Vote};
use crate::soc::{ResilientSoc, SocConfig};
use crate::tile::{TileHealth, TileId};
use rsoc_adapt::{
    AdaptiveController, AnomalySample, Deployment, DetectorConfig, ProtocolChoice, ThreatDetector,
    ThreatLevel,
};
use rsoc_bft::runner::RunReport;
use rsoc_crypto::MacKey;
use rsoc_diversity::VariantId;
use rsoc_fpga::{Bitstream, FpgaFabric, Icap, ReconfigEngine, Region};

/// Frames each tile's softcore occupies on the fabric.
const FRAMES_PER_TILE: u32 = 2;
/// Words per frame in the managed fabric.
const WORDS_PER_FRAME: usize = 8;

/// Manager configuration and feature toggles (the F1 ablation switches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// Kernel replicas voting at the privilege gate.
    pub kernels: u32,
    /// Vote quorum at the gate.
    pub gate_threshold: usize,
    /// Threat detector parameters.
    pub detector: DetectorConfig,
    /// Deployment table for adaptation.
    pub controller: AdaptiveController,
    /// Rejuvenate compromised tiles at epoch end.
    pub enable_rejuvenation: bool,
    /// Rejuvenate onto *diverse* variants (vs same variant).
    pub enable_diversity: bool,
    /// Adapt deployment to the detected threat level (vs static MinBFT f=1).
    pub enable_adaptation: bool,
    /// Relocate rejuvenated softcores to different fabric regions.
    pub enable_relocation: bool,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            kernels: 3,
            gate_threshold: 2,
            detector: DetectorConfig::default(),
            controller: AdaptiveController::default(),
            enable_rejuvenation: true,
            enable_diversity: true,
            enable_adaptation: true,
            enable_relocation: true,
        }
    }
}

/// Faults injected into one epoch (the experiment's ground truth).
#[derive(Debug, Clone, Default)]
pub struct EpochThreat {
    /// Tiles the adversary compromises this epoch.
    pub compromise: Vec<TileId>,
    /// Tiles that crash benignly this epoch.
    pub crash: Vec<TileId>,
    /// SEU events observed in protected registers this epoch.
    pub seu_events: u32,
}

/// Outcome of one epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Detected threat level after this epoch's observations.
    pub level: ThreatLevel,
    /// Deployment used for the epoch's workload.
    pub deployment: Deployment,
    /// The workload run report.
    pub run: RunReport,
    /// Tiles rejuvenated at epoch end.
    pub rejuvenated: Vec<TileId>,
    /// Softcore relocations performed.
    pub relocations: u32,
    /// Gate (approved, denied) counters after the epoch.
    pub gate_stats: (u64, u64),
}

/// The SoC resilience manager.
#[derive(Debug)]
pub struct SocManager {
    soc: ResilientSoc,
    engine: ReconfigEngine,
    gate: PrivilegeGate,
    detector: ThreatDetector,
    config: ManagerConfig,
    bs_key: MacKey,
    epoch: u64,
}

impl SocManager {
    /// Builds the SoC, its fabric (every tile's softcore configured through
    /// the gate), and the control plane.
    ///
    /// # Panics
    /// Panics if gate provisioning or initial configuration fails (a bug,
    /// not an input condition).
    pub fn new(soc_config: SocConfig, config: ManagerConfig) -> Self {
        let soc = ResilientSoc::new(soc_config);
        let tiles = soc.tiles().len() as u32;
        // Fabric with 100% spare capacity for relocation.
        let total_frames = tiles * FRAMES_PER_TILE * 2;
        let fabric = FpgaFabric::new(total_frames, 1, WORDS_PER_FRAME);
        let bs_key = MacKey::derive(soc_config.seed, "bitstream-authority");
        let mut icap = Icap::new(bs_key.clone());
        icap.allow(PrivilegeGate::GATE_PRINCIPAL, Region::new(0, total_frames));
        let engine = ReconfigEngine::new(fabric, icap);
        let gate = PrivilegeGate::new(soc_config.seed, config.kernels, config.gate_threshold);
        let detector = ThreatDetector::new(config.detector);
        let mut mgr = SocManager { soc, engine, gate, detector, config, bs_key, epoch: 0 };
        // Initial configuration: tile i's softcore in region [i*F, F).
        for i in 0..tiles {
            let region = Region::new(i * FRAMES_PER_TILE, FRAMES_PER_TILE);
            let variant = mgr.soc.tiles()[i as usize].variant;
            let op = PrivilegedOp::Reconfigure {
                region,
                block: i as u64,
                bitstream: Bitstream::for_variant(
                    variant.0 as u64,
                    region,
                    WORDS_PER_FRAME,
                    &mgr.bs_key,
                ),
            };
            mgr.approve_and_execute(&op).expect("initial configuration must succeed");
        }
        mgr
    }

    /// The underlying SoC.
    pub fn soc(&self) -> &ResilientSoc {
        &self.soc
    }

    /// The reconfiguration engine (fabric inspection).
    pub fn engine(&self) -> &ReconfigEngine {
        &self.engine
    }

    /// The current detected threat level.
    pub fn threat_level(&self) -> ThreatLevel {
        self.detector.level()
    }

    /// Collects votes from all (correct) kernels and executes through the
    /// gate.
    fn approve_and_execute(
        &mut self,
        op: &PrivilegedOp,
    ) -> Result<(), crate::privilege::GateError> {
        let votes: Vec<Vote> = (0..self.config.kernels)
            .map(|k| Vote::sign(k, self.gate.kernel_key(k).expect("provisioned"), op))
            .collect();
        self.gate.execute(&mut self.engine, op, &votes)
    }

    /// Runs one epoch: inject faults, observe, (maybe) adapt, run the
    /// workload, (maybe) rejuvenate/relocate through the gate.
    pub fn run_epoch(
        &mut self,
        threat: &EpochThreat,
        clients: u32,
        requests_per_client: u64,
    ) -> EpochReport {
        self.epoch += 1;
        // 1. Ground truth faults land.
        for t in &threat.compromise {
            self.soc.compromise_tile(*t);
        }
        for t in &threat.crash {
            self.soc.crash_tile(*t);
        }

        // 2. Monitors feed the detector: compromised replicas reveal
        //    themselves through failed certificate verifications and
        //    equivocation attempts during the workload.
        let visible_compromised =
            self.soc.tiles().iter().filter(|t| t.health == TileHealth::Compromised).count() as u32;
        let crashed = threat.crash.len() as u32;
        let level = self.detector.observe(AnomalySample {
            equivocations: visible_compromised,
            mac_failures: visible_compromised * 2,
            timeouts: crashed,
            seu_events: threat.seu_events,
        });

        // 3. Deployment.
        let deployment = if self.config.enable_adaptation {
            self.config.controller.deployment_for(level)
        } else {
            Deployment { protocol: ProtocolChoice::MinBft, f: 1 }
        };

        // 4. Workload.
        let run =
            self.soc.run_workload(deployment.protocol, deployment.f, clients, requests_per_client);

        // 5. Rejuvenation + relocation through the gate.
        let mut rejuvenated = Vec::new();
        let mut relocations = 0u32;
        if self.config.enable_rejuvenation {
            let victims: Vec<TileId> = self
                .soc
                .tiles()
                .iter()
                .filter(|t| t.health == TileHealth::Compromised)
                .map(|t| t.id)
                .collect();
            for tile in victims {
                let op = PrivilegedOp::RejuvenateTile { tile };
                if self.approve_and_execute(&op).is_err() {
                    continue;
                }
                let new_variant = if self.config.enable_diversity {
                    let avoid: Vec<VariantId> =
                        self.soc.tiles().iter().map(|t| t.variant).collect();
                    let mut rng = self.soc.rng_mut().fork(0xE90C + tile.0 as u64);
                    self.soc.pool_mut().diverse_replacement(&avoid, &mut rng)
                } else {
                    self.soc.tiles()[tile.0 as usize].variant
                };
                // Spatial rejuvenation: decommission the old site, bring the
                // softcore up elsewhere (or in place when relocation is off).
                let block = tile.0 as u64;
                let old_region = self.engine.fabric().block_region(block);
                let target = if self.config.enable_relocation {
                    // Pick the destination *before* freeing the old site so
                    // the block genuinely moves to a different grid location.
                    let fresh = self.engine.fabric().find_free_region(FRAMES_PER_TILE);
                    let _ = self.engine.decommission(PrivilegeGate::GATE_PRINCIPAL, block);
                    fresh.or_else(|| self.engine.fabric().find_free_region(FRAMES_PER_TILE))
                } else {
                    let _ = self.engine.decommission(PrivilegeGate::GATE_PRINCIPAL, block);
                    old_region
                };
                if let Some(region) = target {
                    let op = PrivilegedOp::Reconfigure {
                        region,
                        block,
                        bitstream: Bitstream::for_variant(
                            new_variant.0 as u64,
                            region,
                            WORDS_PER_FRAME,
                            &self.bs_key,
                        ),
                    };
                    if self.approve_and_execute(&op).is_ok() {
                        if Some(region) != old_region {
                            relocations += 1;
                        }
                        self.soc.tile_mut(tile).rejuvenate(new_variant);
                        rejuvenated.push(tile);
                    }
                }
            }
        }
        EpochReport {
            level,
            deployment,
            run,
            rejuvenated,
            relocations,
            gate_stats: self.gate.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(seed: u64) -> SocManager {
        SocManager::new(SocConfig { mesh_width: 4, mesh_height: 4, seed }, ManagerConfig::default())
    }

    #[test]
    fn initial_configuration_places_all_tiles() {
        let mgr = manager(1);
        for i in 0..16u64 {
            assert!(mgr.engine().fabric().block_region(i).is_some(), "tile {i} configured");
        }
        assert_eq!(mgr.threat_level(), ThreatLevel::Low);
    }

    #[test]
    fn quiet_epoch_commits_and_stays_cheap() {
        let mut mgr = manager(2);
        let report = mgr.run_epoch(&EpochThreat::default(), 1, 5);
        assert_eq!(report.level, ThreatLevel::Low);
        assert_eq!(report.run.committed, 5);
        assert!(report.run.safety_ok);
        assert_eq!(report.deployment.protocol, ProtocolChoice::Passive, "low threat → cheap");
        assert!(report.rejuvenated.is_empty());
    }

    #[test]
    fn attack_epoch_escalates_masks_and_rejuvenates() {
        let mut mgr = manager(3);
        // Warm the detector with one noisy epoch, then attack.
        mgr.run_epoch(
            &EpochThreat { compromise: vec![], seu_events: 1, ..Default::default() },
            1,
            2,
        );
        let attack = EpochThreat { compromise: vec![TileId(5)], ..Default::default() };
        let report = mgr.run_epoch(&attack, 1, 4);
        assert!(report.level >= ThreatLevel::Elevated, "detector must notice");
        assert!(report.run.safety_ok, "the deployment masks the Byzantine tile");
        assert_eq!(report.rejuvenated, vec![TileId(5)], "victim rejuvenated via the gate");
        // The tile is healthy again with a fresh variant.
        let tile = &mgr.soc().tiles()[5];
        assert_eq!(tile.health, TileHealth::Healthy);
        let denied = report.gate_stats.1;
        assert_eq!(denied, 0, "all-correct kernels always reach quorum");
    }

    #[test]
    fn relocation_moves_softcore_on_rejuvenation() {
        let mut mgr = manager(4);
        let before = mgr.engine().fabric().block_region(5).unwrap();
        let attack = EpochThreat { compromise: vec![TileId(5)], ..Default::default() };
        let report = mgr.run_epoch(&attack, 1, 2);
        assert_eq!(report.rejuvenated, vec![TileId(5)]);
        assert_eq!(report.relocations, 1);
        let after = mgr.engine().fabric().block_region(5).unwrap();
        assert_ne!(before, after, "spatial rejuvenation must move the block");
    }

    #[test]
    fn diversity_toggle_controls_variant_change() {
        let mut with =
            SocManager::new(SocConfig { seed: 5, ..Default::default() }, ManagerConfig::default());
        let mut without = SocManager::new(
            SocConfig { seed: 5, ..Default::default() },
            ManagerConfig { enable_diversity: false, ..Default::default() },
        );
        let v_before = with.soc().tiles()[2].variant;
        let attack = EpochThreat { compromise: vec![TileId(2)], ..Default::default() };
        with.run_epoch(&attack, 1, 2);
        without.run_epoch(&attack, 1, 2);
        assert_ne!(with.soc().tiles()[2].variant, v_before, "diverse rejuvenation changes variant");
        assert_eq!(without.soc().tiles()[2].variant, v_before, "same-variant restart keeps it");
    }

    #[test]
    fn epochs_are_deterministic() {
        let run = |seed| {
            let mut m = manager(seed);
            let r = m.run_epoch(
                &EpochThreat { compromise: vec![TileId(1)], ..Default::default() },
                2,
                3,
            );
            (r.run.committed, r.run.messages_total, r.rejuvenated.clone())
        };
        assert_eq!(run(7), run(7));
    }
}
