//! # rsoc-soc — the fault- and intrusion-resilient manycore SoC
//!
//! The paper's integrated contribution: a manycore system-on-chip whose
//! tiles run replicated state machines over the NoC, anchored in per-tile
//! hardware hybrids, kept alive by diversity, rejuvenation, adaptation, and
//! consensually-voted reconfiguration. Every ingredient comes from a
//! sibling crate; this crate is the vertical slice of Fig. 1:
//!
//! | Fig. 1 layer | provided by |
//! |---|---|
//! | gates / ECC registers | `rsoc-hw` |
//! | trusted hybrids (USIG) | `rsoc-hybrid` |
//! | FPGA fabric + reconfiguration | `rsoc-fpga` |
//! | NoC | `rsoc-noc` |
//! | BFT/CFT replication | `rsoc-bft` |
//! | diversity / rejuvenation / adaptation | `rsoc-diversity`, `rsoc-rejuv`, `rsoc-adapt` |
//!
//! Key pieces here:
//!
//! * [`Tile`] — a processing tile with health, variant, and mesh position;
//! * [`PrivilegeGate`] — the trusted-trustworthy vote checker of Gouveia
//!   et al. (the paper's \[55\]): privileged operations (reconfigure, grant,
//!   rejuvenate) execute only with a quorum of kernel-replica votes;
//! * [`ResilientSoc`] — tile inventory + replica placement + protocol runs
//!   over NoC-derived latencies;
//! * [`SocManager`] — the epoch control loop wiring detector → controller
//!   → rejuvenation/relocation through the gate (experiment F1).
//!
//! ## Example
//!
//! ```
//! use rsoc_soc::{ResilientSoc, SocConfig};
//! use rsoc_adapt::ProtocolChoice;
//!
//! let mut soc = ResilientSoc::new(SocConfig { mesh_width: 4, mesh_height: 4, seed: 7 });
//! let report = soc.run_workload(ProtocolChoice::MinBft, 1, 2, 5);
//! assert!(report.safety_ok);
//! assert_eq!(report.committed, 10);
//! ```

pub mod manager;
pub mod privilege;
pub mod soc;
pub mod tile;

pub use manager::{EpochReport, EpochThreat, ManagerConfig, SocManager};
pub use privilege::{GateError, PrivilegeGate, PrivilegedOp, Vote};
pub use soc::{ResilientSoc, SocConfig};
pub use tile::{Tile, TileHealth, TileId};
