//! The voted privilege gate — the paper's citation \[55\] (Gouveia et al.,
//! *Behind the last line of defense: Surviving SoC faults and intrusions*).
//!
//! §II-E: "privilege change must remain a trusted operation executed
//! consensually and enforced by a trusted-trustworthy component."
//!
//! The gate is a tiny hardware vote checker: a privileged operation
//! (reconfigure a region, change an ICAP grant, rejuvenate a tile) executes
//! only when a quorum of kernel replicas submits matching HMAC-signed votes
//! over the operation digest. A minority of compromised kernels can
//! neither push their own operation through nor forge votes; and because
//! only the *gate's* principal holds ICAP write rights, bypassing the gate
//! is structurally impossible. Experiment **E8** compares this against the
//! direct-grant baseline.

use crate::tile::TileId;
use rsoc_crypto::{sha256, MacKey, Tag};
use rsoc_fpga::{Bitstream, BlockId, Principal, ReconfigEngine, ReconfigError, Region};
use rsoc_hybrid::{A2m, A2mCert};
use std::collections::BTreeMap;
use std::fmt;

/// Operations that require consensual approval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrivilegedOp {
    /// Write `bitstream` into `region` and enable it as `block`.
    Reconfigure {
        /// Target region.
        region: Region,
        /// Block identity after enabling.
        block: BlockId,
        /// The full bitstream to install.
        bitstream: Bitstream,
    },
    /// Grant a principal write rights over a region.
    Grant {
        /// Beneficiary.
        principal: Principal,
        /// Region granted.
        region: Region,
    },
    /// Revoke a principal's rights over a region.
    Revoke {
        /// Principal losing access.
        principal: Principal,
        /// Region revoked.
        region: Region,
    },
    /// Mark a tile for rejuvenation (the manager performs the restart).
    RejuvenateTile {
        /// Which tile.
        tile: TileId,
    },
}

impl PrivilegedOp {
    /// Canonical digest of the operation (what votes sign).
    pub fn digest(&self) -> [u8; 32] {
        let mut bytes = Vec::new();
        match self {
            PrivilegedOp::Reconfigure { region, block, bitstream } => {
                bytes.extend_from_slice(b"RECONF|");
                bytes.extend_from_slice(&region.start.to_le_bytes());
                bytes.extend_from_slice(&region.len.to_le_bytes());
                bytes.extend_from_slice(&block.to_le_bytes());
                bytes.extend_from_slice(&bitstream.crc.to_le_bytes());
                bytes.extend_from_slice(&bitstream.tag.0);
            }
            PrivilegedOp::Grant { principal, region } => {
                bytes.extend_from_slice(b"GRANT|");
                bytes.extend_from_slice(&principal.0.to_le_bytes());
                bytes.extend_from_slice(&region.start.to_le_bytes());
                bytes.extend_from_slice(&region.len.to_le_bytes());
            }
            PrivilegedOp::Revoke { principal, region } => {
                bytes.extend_from_slice(b"REVOKE|");
                bytes.extend_from_slice(&principal.0.to_le_bytes());
                bytes.extend_from_slice(&region.start.to_le_bytes());
                bytes.extend_from_slice(&region.len.to_le_bytes());
            }
            PrivilegedOp::RejuvenateTile { tile } => {
                bytes.extend_from_slice(b"REJUV|");
                bytes.extend_from_slice(&tile.0.to_le_bytes());
            }
        }
        sha256(&bytes)
    }
}

/// A kernel replica's signed approval of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// Voting kernel replica.
    pub kernel: u32,
    /// Digest of the approved operation.
    pub op_digest: [u8; 32],
    /// HMAC over `(kernel, op_digest)` under the kernel's vote key.
    pub tag: Tag,
}

impl Vote {
    /// Signs an approval of `op` as kernel `kernel` with `key`.
    pub fn sign(kernel: u32, key: &MacKey, op: &PrivilegedOp) -> Vote {
        let digest = op.digest();
        Vote { kernel, op_digest: digest, tag: key.mac(&payload(kernel, &digest)) }
    }
}

fn payload(kernel: u32, digest: &[u8; 32]) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + 32);
    p.extend_from_slice(&kernel.to_le_bytes());
    p.extend_from_slice(digest);
    p
}

/// Gate errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateError {
    /// Fewer than `threshold` *distinct, valid* matching votes.
    InsufficientVotes,
    /// The approved operation failed to execute (e.g., ICAP rejection).
    Execution(ReconfigError),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::InsufficientVotes => write!(f, "insufficient matching votes"),
            GateError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for GateError {}

/// The trusted vote checker + executor.
///
/// Every approved operation is appended to an [`A2m`] attested append-only
/// log, so even a later full compromise of the management plane cannot
/// rewrite the history of privilege changes — auditors replay the digests
/// against the log certificate (see [`PrivilegeGate::audit_cert`]).
#[derive(Debug)]
pub struct PrivilegeGate {
    keys: BTreeMap<u32, MacKey>,
    threshold: usize,
    principal: Principal,
    approved: u64,
    denied: u64,
    audit: A2m,
    audit_log: u32,
    audit_key: MacKey,
    audit_digests: Vec<[u8; 32]>,
}

impl PrivilegeGate {
    /// The principal identity the gate uses at the ICAP. Provision the ICAP
    /// so that **only** this principal holds write rights.
    pub const GATE_PRINCIPAL: Principal = Principal(0xFFFF);

    /// Creates a gate for kernels `0..n` with vote quorum `threshold`.
    ///
    /// # Panics
    /// Panics if `threshold` is zero or exceeds the kernel count.
    pub fn new(seed: u64, kernels: u32, threshold: usize) -> Self {
        assert!(threshold >= 1 && threshold <= kernels as usize, "bad threshold");
        let keys =
            (0..kernels).map(|k| (k, MacKey::derive(seed, &format!("kernel-vote-{k}")))).collect();
        let audit_key = MacKey::derive(seed, "gate-audit");
        let mut audit = A2m::new(0xA0D1, audit_key.clone());
        let audit_log = audit.create_log();
        PrivilegeGate {
            keys,
            threshold,
            principal: Self::GATE_PRINCIPAL,
            approved: 0,
            denied: 0,
            audit,
            audit_log,
            audit_key,
            audit_digests: Vec::new(),
        }
    }

    /// The vote key of kernel `k` (provisioning-time export for the kernel
    /// replicas; experiments leak it to compromised kernels on purpose).
    pub fn kernel_key(&self, kernel: u32) -> Option<&MacKey> {
        self.keys.get(&kernel)
    }

    /// Vote quorum.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Operations approved / denied so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.approved, self.denied)
    }

    /// Certificate over the current end of the tamper-evident audit log.
    pub fn audit_cert(&self) -> A2mCert {
        self.audit.end(self.audit_log).expect("gate audit log always exists")
    }

    /// Verifies that `claimed_history` (operation digests, in order) is
    /// exactly what this gate approved, against `cert`.
    pub fn audit_verify(&self, cert: &A2mCert, claimed_history: &[[u8; 32]]) -> bool {
        let values: Vec<&[u8]> = claimed_history.iter().map(|d| d.as_slice()).collect();
        A2m::verify_content(&self.audit_key, cert, &values)
    }

    /// The digests of all approved operations (the true history, for
    /// comparison in audits and tests).
    pub fn approved_history(&self) -> &[[u8; 32]] {
        &self.audit_digests
    }

    /// Checks a vote set against `op`: at least `threshold` votes from
    /// *distinct known kernels*, each with a valid tag over this exact
    /// operation digest.
    pub fn check(&self, op: &PrivilegedOp, votes: &[Vote]) -> bool {
        let digest = op.digest();
        let mut valid: Vec<u32> = votes
            .iter()
            .filter(|v| v.op_digest == digest)
            .filter(|v| {
                self.keys
                    .get(&v.kernel)
                    .map(|k| k.verify(&payload(v.kernel, &digest), &v.tag))
                    .unwrap_or(false)
            })
            .map(|v| v.kernel)
            .collect();
        valid.sort_unstable();
        valid.dedup();
        valid.len() >= self.threshold
    }

    /// Checks votes and, if approved, executes `op` against `engine`.
    ///
    /// # Errors
    /// [`GateError::InsufficientVotes`] when the quorum check fails;
    /// [`GateError::Execution`] when the approved operation itself fails.
    pub fn execute(
        &mut self,
        engine: &mut ReconfigEngine,
        op: &PrivilegedOp,
        votes: &[Vote],
    ) -> Result<(), GateError> {
        if !self.check(op, votes) {
            self.denied += 1;
            return Err(GateError::InsufficientVotes);
        }
        self.approved += 1;
        let digest = op.digest();
        self.audit.append(self.audit_log, &digest).expect("gate audit log always exists");
        self.audit_digests.push(digest);
        match op {
            PrivilegedOp::Reconfigure { region, block, bitstream } => engine
                .reconfigure(self.principal, *region, bitstream, *block)
                .map(|_| ())
                .map_err(GateError::Execution),
            PrivilegedOp::Grant { principal, region } => {
                engine.icap_mut().allow(*principal, *region);
                Ok(())
            }
            PrivilegedOp::Revoke { principal, region } => {
                engine.icap_mut().revoke(*principal, *region);
                Ok(())
            }
            PrivilegedOp::RejuvenateTile { .. } => Ok(()), // effect applied by the manager
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsoc_fpga::{FpgaFabric, Icap};

    fn setup(kernels: u32, threshold: usize) -> (PrivilegeGate, ReconfigEngine, MacKey) {
        let gate = PrivilegeGate::new(11, kernels, threshold);
        let bs_key = MacKey::derive(11, "bitstreams");
        let mut icap = Icap::new(bs_key.clone());
        // Only the gate may write — the resilient provisioning.
        icap.allow(PrivilegeGate::GATE_PRINCIPAL, Region::new(0, 16));
        let engine = ReconfigEngine::new(FpgaFabric::new(4, 4, 4), icap);
        (gate, engine, bs_key)
    }

    fn reconf_op(bs_key: &MacKey) -> PrivilegedOp {
        let region = Region::new(0, 2);
        PrivilegedOp::Reconfigure {
            region,
            block: 7,
            bitstream: Bitstream::for_variant(3, region, 4, bs_key),
        }
    }

    #[test]
    fn quorum_approves_and_executes() {
        let (mut gate, mut engine, bs_key) = setup(3, 2);
        let op = reconf_op(&bs_key);
        let votes: Vec<Vote> =
            (0..2).map(|k| Vote::sign(k, gate.kernel_key(k).unwrap(), &op)).collect();
        gate.execute(&mut engine, &op, &votes).unwrap();
        assert_eq!(engine.fabric().block_region(7), Some(Region::new(0, 2)));
        assert_eq!(gate.stats(), (1, 0));
    }

    #[test]
    fn single_compromised_kernel_cannot_push_an_op() {
        let (mut gate, mut engine, bs_key) = setup(3, 2);
        let op = reconf_op(&bs_key);
        // One kernel (even with its real key) is below the quorum.
        let votes = vec![Vote::sign(0, gate.kernel_key(0).unwrap(), &op)];
        assert_eq!(gate.execute(&mut engine, &op, &votes), Err(GateError::InsufficientVotes));
        assert_eq!(engine.fabric().block_region(7), None);
        assert_eq!(gate.stats(), (0, 1));
    }

    #[test]
    fn forged_votes_rejected() {
        let (gate, _engine, bs_key) = setup(3, 2);
        let op = reconf_op(&bs_key);
        let attacker_key = MacKey::derive(999, "attacker");
        let votes = vec![
            Vote::sign(0, gate.kernel_key(0).unwrap(), &op),
            Vote::sign(1, &attacker_key, &op), // forged
        ];
        assert!(!gate.check(&op, &votes));
    }

    #[test]
    fn duplicate_votes_do_not_count_twice() {
        let (gate, _, bs_key) = setup(3, 2);
        let op = reconf_op(&bs_key);
        let v = Vote::sign(0, gate.kernel_key(0).unwrap(), &op);
        assert!(!gate.check(&op, &[v, v, v]), "one kernel, three copies ≠ quorum");
    }

    #[test]
    fn votes_bind_to_the_exact_operation() {
        let (gate, _, bs_key) = setup(3, 2);
        let op_a = reconf_op(&bs_key);
        let op_b = PrivilegedOp::RejuvenateTile { tile: TileId(1) };
        let votes: Vec<Vote> =
            (0..2).map(|k| Vote::sign(k, gate.kernel_key(k).unwrap(), &op_a)).collect();
        assert!(gate.check(&op_a, &votes));
        assert!(!gate.check(&op_b, &votes), "votes for A must not approve B");
    }

    #[test]
    fn unknown_kernel_votes_ignored() {
        let (gate, _, bs_key) = setup(3, 2);
        let op = reconf_op(&bs_key);
        let ghost_key = MacKey::derive(11, "kernel-vote-9");
        let votes = vec![
            Vote::sign(0, gate.kernel_key(0).unwrap(), &op),
            Vote::sign(9, &ghost_key, &op), // kernel 9 doesn't exist
        ];
        assert!(!gate.check(&op, &votes));
    }

    #[test]
    fn grant_and_revoke_via_gate() {
        let (mut gate, mut engine, _) = setup(3, 2);
        let beneficiary = Principal(5);
        let region = Region::new(4, 2);
        let grant = PrivilegedOp::Grant { principal: beneficiary, region };
        let votes: Vec<Vote> =
            (0..2).map(|k| Vote::sign(k, gate.kernel_key(k).unwrap(), &grant)).collect();
        gate.execute(&mut engine, &grant, &votes).unwrap();
        assert!(engine.icap().permits(beneficiary, region));
        let revoke = PrivilegedOp::Revoke { principal: beneficiary, region };
        let votes: Vec<Vote> =
            (0..2).map(|k| Vote::sign(k, gate.kernel_key(k).unwrap(), &revoke)).collect();
        gate.execute(&mut engine, &revoke, &votes).unwrap();
        assert!(!engine.icap().permits(beneficiary, region));
    }

    #[test]
    fn direct_icap_bypass_blocked_in_resilient_provisioning() {
        // A compromised kernel tries to skip the gate entirely.
        let (_, mut engine, bs_key) = setup(3, 2);
        let region = Region::new(0, 2);
        let evil = Bitstream::for_variant(666, region, 4, &bs_key);
        let err = engine.reconfigure(Principal(0), region, &evil, 13).unwrap_err();
        assert!(matches!(err, ReconfigError::Icap(_)), "ACL must stop the bypass");
    }

    #[test]
    #[should_panic(expected = "bad threshold")]
    fn rejects_zero_threshold() {
        PrivilegeGate::new(1, 3, 0);
    }

    #[test]
    fn audit_log_records_approved_operations_only() {
        let (mut gate, mut engine, bs_key) = setup(3, 2);
        let op = reconf_op(&bs_key);
        // A denied attempt leaves no audit entry.
        let lone = vec![Vote::sign(0, gate.kernel_key(0).unwrap(), &op)];
        let _ = gate.execute(&mut engine, &op, &lone);
        assert_eq!(gate.audit_cert().seq, 0);
        // An approved one is appended.
        let votes: Vec<Vote> =
            (0..2).map(|k| Vote::sign(k, gate.kernel_key(k).unwrap(), &op)).collect();
        gate.execute(&mut engine, &op, &votes).unwrap();
        let cert = gate.audit_cert();
        assert_eq!(cert.seq, 1);
        assert!(gate.audit_verify(&cert, gate.approved_history()));
    }

    #[test]
    fn audit_detects_rewritten_history() {
        let (mut gate, mut engine, bs_key) = setup(3, 2);
        let op = reconf_op(&bs_key);
        let votes: Vec<Vote> =
            (0..2).map(|k| Vote::sign(k, gate.kernel_key(k).unwrap(), &op)).collect();
        gate.execute(&mut engine, &op, &votes).unwrap();
        let cert = gate.audit_cert();
        // An attacker claims a different operation was approved.
        let fake = [PrivilegedOp::RejuvenateTile { tile: TileId(9) }.digest()];
        assert!(!gate.audit_verify(&cert, &fake));
        // Or claims nothing happened.
        assert!(!gate.audit_verify(&cert, &[]));
    }
}
