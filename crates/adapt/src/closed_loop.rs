//! Closed-loop adaptation: the detector observes *noisy* anomaly windows
//! generated from ground truth, and the controller follows the detector —
//! no oracle labels. This measures what §II-D actually deploys: detection
//! lag, false alarms, and hysteresis all show up in the ledger.

use crate::controller::{AdaptReport, AdaptiveController, Deployment};
use crate::detector::{AnomalySample, DetectorConfig, ThreatDetector};
use rsoc_sim::SimRng;

/// Ground truth for one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruthWindow {
    /// Window length in cycles.
    pub duration: u64,
    /// Attacker strength (simultaneously compromisable replicas).
    pub byz_faults: u32,
}

/// Noise model mapping ground truth to observed anomaly counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservationModel {
    /// Mean equivocation detections per window per active Byzantine fault.
    pub equivocations_per_fault: f64,
    /// Mean MAC failures per window per active Byzantine fault.
    pub mac_failures_per_fault: f64,
    /// Mean benign timeouts per window (congestion noise, independent of
    /// the attacker — the false-alarm channel).
    pub background_timeouts: f64,
    /// Mean SEU events per window (environment noise).
    pub background_seu: f64,
}

impl Default for ObservationModel {
    fn default() -> Self {
        ObservationModel {
            equivocations_per_fault: 1.5,
            mac_failures_per_fault: 2.5,
            background_timeouts: 0.3,
            background_seu: 0.2,
        }
    }
}

impl ObservationModel {
    /// Draws one noisy window (Poisson-ish via per-unit Bernoulli splits).
    pub fn observe(&self, truth: GroundTruthWindow, rng: &mut SimRng) -> AnomalySample {
        let draw = |mean: f64, rng: &mut SimRng| -> u32 {
            // Sum of 8 Bernoulli(mean/8) — cheap bounded Poisson surrogate.
            let p = (mean / 8.0).min(1.0);
            (0..8).filter(|_| rng.chance(p)).count() as u32
        };
        let f = truth.byz_faults as f64;
        AnomalySample {
            equivocations: draw(self.equivocations_per_fault * f, rng),
            mac_failures: draw(self.mac_failures_per_fault * f, rng),
            timeouts: draw(self.background_timeouts + 0.4 * f, rng),
            seu_events: draw(self.background_seu, rng),
        }
    }
}

/// Result of a closed-loop run: the standard ledger plus detector quality.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopReport {
    /// Protection/cost ledger.
    pub ledger: AdaptReport,
    /// Windows where an active attacker (`byz_faults > 0`) was masked.
    pub attacks_masked: u32,
    /// Windows where an active attacker exceeded the deployment.
    pub attacks_missed: u32,
    /// Windows with no attacker where more than the quiet deployment was
    /// provisioned (false-alarm cost).
    pub false_alarm_windows: u32,
}

/// Runs the detector+controller closed loop over ground truth windows.
pub fn run_closed_loop(
    truth: &[GroundTruthWindow],
    detector_config: DetectorConfig,
    controller: AdaptiveController,
    observation: ObservationModel,
    rng: &mut SimRng,
) -> ClosedLoopReport {
    let mut detector = ThreatDetector::new(detector_config);
    let quiet_deployment = controller.deployment_for(crate::detector::ThreatLevel::Low);
    let mut current: Deployment = quiet_deployment;
    let mut ledger = AdaptReport {
        duration: 0,
        underprotected_time: 0,
        replica_cycles: 0,
        switches: 0,
        switching_time: 0,
    };
    let mut attacks_masked = 0;
    let mut attacks_missed = 0;
    let mut false_alarms = 0;

    for w in truth {
        let sample = observation.observe(*w, rng);
        let level = detector.observe(sample);
        let want = controller.deployment_for(level);
        if want != current {
            ledger.switches += 1;
            ledger.switching_time += controller.switch_cost.min(w.duration);
            current = want;
        }
        ledger.duration += w.duration;
        ledger.replica_cycles += w.duration * current.replicas() as u64;
        let masked = current.masks(w.byz_faults);
        if !masked {
            ledger.underprotected_time += w.duration;
        }
        if w.byz_faults > 0 {
            if masked {
                attacks_masked += 1;
            } else {
                attacks_missed += 1;
            }
        } else if current.replicas() > quiet_deployment.replicas() {
            false_alarms += 1;
        }
    }
    ClosedLoopReport { ledger, attacks_masked, attacks_missed, false_alarm_windows: false_alarms }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_truth() -> Vec<GroundTruthWindow> {
        let mut t = Vec::new();
        for _ in 0..30 {
            t.push(GroundTruthWindow { duration: 1_000, byz_faults: 0 });
        }
        for _ in 0..10 {
            t.push(GroundTruthWindow { duration: 1_000, byz_faults: 1 });
        }
        for _ in 0..6 {
            t.push(GroundTruthWindow { duration: 1_000, byz_faults: 2 });
        }
        for _ in 0..30 {
            t.push(GroundTruthWindow { duration: 1_000, byz_faults: 0 });
        }
        t
    }

    #[test]
    fn detector_in_the_loop_masks_most_attack_windows() {
        let mut rng = SimRng::new(1);
        let report = run_closed_loop(
            &storm_truth(),
            DetectorConfig::default(),
            AdaptiveController::default(),
            ObservationModel::default(),
            &mut rng,
        );
        let total_attacks = report.attacks_masked + report.attacks_missed;
        assert_eq!(total_attacks, 16);
        assert!(
            report.attacks_masked >= 12,
            "most attack windows must be masked: {}/{}",
            report.attacks_masked,
            total_attacks
        );
        // Lag means the first window or two may be missed — but not many.
        assert!(report.attacks_missed <= 4, "missed {}", report.attacks_missed);
    }

    #[test]
    fn quiet_truth_keeps_footprint_small() {
        let truth = vec![GroundTruthWindow { duration: 1_000, byz_faults: 0 }; 50];
        let mut rng = SimRng::new(2);
        let report = run_closed_loop(
            &truth,
            DetectorConfig::default(),
            AdaptiveController::default(),
            ObservationModel::default(),
            &mut rng,
        );
        assert_eq!(report.attacks_missed, 0);
        assert!(
            report.ledger.mean_replicas() < 3.0,
            "background noise must not inflate the fleet: {}",
            report.ledger.mean_replicas()
        );
        assert!(report.false_alarm_windows < 10);
    }

    #[test]
    fn noisy_background_costs_false_alarms_not_safety() {
        let truth = vec![GroundTruthWindow { duration: 1_000, byz_faults: 0 }; 50];
        let loud = ObservationModel {
            background_timeouts: 3.0, // heavy congestion noise
            ..Default::default()
        };
        let mut rng = SimRng::new(3);
        let report = run_closed_loop(
            &truth,
            DetectorConfig::default(),
            AdaptiveController::default(),
            loud,
            &mut rng,
        );
        assert_eq!(report.ledger.underprotected_time, 0, "false alarms are never unsafe");
        assert!(
            report.false_alarm_windows > 5,
            "heavy noise must show up as over-provisioning: {}",
            report.false_alarm_windows
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            run_closed_loop(
                &storm_truth(),
                DetectorConfig::default(),
                AdaptiveController::default(),
                ObservationModel::default(),
                &mut rng,
            )
        };
        assert_eq!(run(7), run(7));
    }
}
