//! Severity detection: EWMA anomaly fusion with hysteresis.

/// Discrete threat levels, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ThreatLevel {
    /// Background noise only.
    #[default]
    Low,
    /// Elevated anomaly rates.
    Elevated,
    /// Likely active attacker.
    High,
    /// Confirmed ongoing intrusion attempts.
    Critical,
}

impl ThreatLevel {
    /// All levels, ascending.
    pub const ALL: [ThreatLevel; 4] =
        [ThreatLevel::Low, ThreatLevel::Elevated, ThreatLevel::High, ThreatLevel::Critical];
}

/// One sampling window of anomaly counters, as produced by the SoC's
/// protocol and hardware monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnomalySample {
    /// Messages whose MAC/UI verification failed.
    pub mac_failures: u32,
    /// Request-patience timeouts (possible primary attacks / crashes).
    pub timeouts: u32,
    /// Detected equivocation attempts (conflicting proposals observed).
    pub equivocations: u32,
    /// Corrected/detected SEUs in protected registers.
    pub seu_events: u32,
}

impl AnomalySample {
    fn score(&self, w: &DetectorConfig) -> f64 {
        self.mac_failures as f64 * w.weight_mac
            + self.timeouts as f64 * w.weight_timeout
            + self.equivocations as f64 * w.weight_equivocation
            + self.seu_events as f64 * w.weight_seu
    }
}

/// Detector parameters: signal weights, EWMA smoothing, level thresholds,
/// and hysteresis margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Weight of MAC verification failures (strong intrusion signal).
    pub weight_mac: f64,
    /// Weight of timeouts (weak signal; also benign congestion).
    pub weight_timeout: f64,
    /// Weight of equivocation detections (very strong signal).
    pub weight_equivocation: f64,
    /// Weight of SEU events (environment signal).
    pub weight_seu: f64,
    /// EWMA smoothing factor in `(0, 1]`; higher = more reactive.
    pub alpha: f64,
    /// Score thresholds for Elevated / High / Critical.
    pub thresholds: [f64; 3],
    /// Fractional hysteresis: to *drop* a level the score must fall below
    /// `threshold * (1 - hysteresis)`.
    pub hysteresis: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            weight_mac: 2.0,
            weight_timeout: 0.5,
            weight_equivocation: 4.0,
            weight_seu: 0.25,
            alpha: 0.3,
            thresholds: [1.0, 4.0, 10.0],
            hysteresis: 0.3,
        }
    }
}

/// EWMA threat detector with hysteresis.
#[derive(Debug, Clone)]
pub struct ThreatDetector {
    config: DetectorConfig,
    ewma: f64,
    level: ThreatLevel,
    observations: u64,
}

impl ThreatDetector {
    /// Creates a detector at `Low` with zero score.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]` or thresholds are not
    /// strictly increasing.
    pub fn new(config: DetectorConfig) -> Self {
        assert!(config.alpha > 0.0 && config.alpha <= 1.0, "alpha must be in (0,1]");
        assert!(
            config.thresholds[0] < config.thresholds[1]
                && config.thresholds[1] < config.thresholds[2],
            "thresholds must increase"
        );
        ThreatDetector { config, ewma: 0.0, level: ThreatLevel::Low, observations: 0 }
    }

    /// Feeds one sampling window; returns the (possibly unchanged) level.
    pub fn observe(&mut self, sample: AnomalySample) -> ThreatLevel {
        self.observations += 1;
        let s = sample.score(&self.config);
        self.ewma = self.config.alpha * s + (1.0 - self.config.alpha) * self.ewma;
        self.level = self.classify();
        self.level
    }

    fn classify(&self) -> ThreatLevel {
        let t = &self.config.thresholds;
        let h = 1.0 - self.config.hysteresis;
        // Rising edges use raw thresholds; falling edges the hysteresis ones.
        let raw = if self.ewma >= t[2] {
            ThreatLevel::Critical
        } else if self.ewma >= t[1] {
            ThreatLevel::High
        } else if self.ewma >= t[0] {
            ThreatLevel::Elevated
        } else {
            ThreatLevel::Low
        };
        if raw >= self.level {
            return raw;
        }
        // Dropping: only if we cleared the hysteresis band of each level in
        // between.
        let mut lvl = self.level;
        while lvl > raw {
            let idx = match lvl {
                ThreatLevel::Critical => 2,
                ThreatLevel::High => 1,
                ThreatLevel::Elevated => 0,
                ThreatLevel::Low => unreachable!("lvl > raw >= Low"),
            };
            if self.ewma < t[idx] * h {
                lvl = ThreatLevel::ALL[idx]; // one level down
            } else {
                break;
            }
        }
        lvl
    }

    /// Current level.
    pub fn level(&self) -> ThreatLevel {
        self.level
    }

    /// Current smoothed score.
    pub fn score(&self) -> f64 {
        self.ewma
    }

    /// Windows observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> AnomalySample {
        AnomalySample::default()
    }

    #[test]
    fn starts_low_and_stays_low_when_quiet() {
        let mut d = ThreatDetector::new(DetectorConfig::default());
        for _ in 0..50 {
            assert_eq!(d.observe(quiet()), ThreatLevel::Low);
        }
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn escalates_under_attack_signals() {
        let mut d = ThreatDetector::new(DetectorConfig::default());
        for _ in 0..30 {
            d.observe(AnomalySample { equivocations: 3, mac_failures: 4, ..Default::default() });
        }
        assert_eq!(d.level(), ThreatLevel::Critical);
    }

    #[test]
    fn mild_noise_reaches_elevated_not_critical() {
        let mut d = ThreatDetector::new(DetectorConfig::default());
        for _ in 0..30 {
            d.observe(AnomalySample { timeouts: 3, ..Default::default() });
        }
        assert!(d.level() >= ThreatLevel::Elevated);
        assert!(d.level() < ThreatLevel::Critical);
    }

    #[test]
    fn hysteresis_delays_deescalation() {
        let cfg = DetectorConfig::default();
        let mut d = ThreatDetector::new(cfg);
        for _ in 0..30 {
            d.observe(AnomalySample { equivocations: 2, ..Default::default() });
        }
        let peak = d.level();
        assert!(peak >= ThreatLevel::High);
        // One quiet window: EWMA decays but hysteresis holds the level.
        let immediately_after = d.observe(quiet());
        assert!(immediately_after >= ThreatLevel::High, "level must not collapse instantly");
        // Sustained quiet eventually de-escalates fully.
        for _ in 0..60 {
            d.observe(quiet());
        }
        assert_eq!(d.level(), ThreatLevel::Low);
    }

    #[test]
    fn seu_events_alone_signal_environment_not_intrusion() {
        let mut d = ThreatDetector::new(DetectorConfig::default());
        for _ in 0..30 {
            d.observe(AnomalySample { seu_events: 2, ..Default::default() });
        }
        assert!(d.level() <= ThreatLevel::Elevated);
    }

    #[test]
    #[should_panic(expected = "thresholds must increase")]
    fn rejects_bad_thresholds() {
        ThreatDetector::new(DetectorConfig { thresholds: [5.0, 4.0, 10.0], ..Default::default() });
    }
}
