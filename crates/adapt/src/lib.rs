//! # rsoc-adapt — threat detection and adaptive resilience control
//!
//! §II-D of the paper: "Yet, another way to withstand a varying number of
//! faults f is to adapt the resilient system accordingly. Among the
//! adaptation forms are scaling out/in the system when f may change, e.g.,
//! upon experiencing more threats, or switching to a backup protocol that
//! is more adequate to the current conditions ... This would require
//! research on the aforementioned adaptation mechanisms and, importantly,
//! on severity detectors that can trigger adaptation actions once needed."
//!
//! Two pieces:
//!
//! * [`ThreatDetector`] — an EWMA fusion of anomaly signals (MAC-
//!   verification failures, request timeouts, detected equivocations, SEU
//!   rate) into a [`ThreatLevel`] with hysteresis;
//! * [`AdaptiveController`] + [`simulate_adaptation`] — maps threat level
//!   to a deployment (protocol + f), and replays a ground-truth threat
//!   trace to compare static vs adaptive configurations on
//!   *under-protection time* and *resource cost* (experiment E7).
//!
//! ## Example
//!
//! ```
//! use rsoc_adapt::{AnomalySample, DetectorConfig, ThreatDetector, ThreatLevel};
//!
//! let mut det = ThreatDetector::new(DetectorConfig::default());
//! assert_eq!(det.level(), ThreatLevel::Low);
//! for _ in 0..20 {
//!     det.observe(AnomalySample { mac_failures: 5, equivocations: 2, ..Default::default() });
//! }
//! assert!(det.level() >= ThreatLevel::High);
//! ```

pub mod closed_loop;
pub mod controller;
pub mod detector;

pub use closed_loop::{run_closed_loop, ClosedLoopReport, GroundTruthWindow, ObservationModel};
pub use controller::{
    simulate_adaptation, AdaptPolicy, AdaptReport, AdaptiveController, Deployment, ProtocolChoice,
};
pub use detector::{AnomalySample, DetectorConfig, ThreatDetector, ThreatLevel};
