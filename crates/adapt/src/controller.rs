//! The adaptive controller and the static-vs-adaptive comparison harness.

use crate::detector::ThreatLevel;

/// Which replication protocol a deployment runs (§II-D "switching to a
/// backup protocol that is more adequate to the current conditions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolChoice {
    /// Primary-backup: cheapest, crash faults only.
    Passive,
    /// MinBFT: Byzantine tolerance at 2f+1 (needs hybrids).
    MinBft,
    /// PBFT: Byzantine tolerance at 3f+1, no hybrid assumption.
    Pbft,
}

impl ProtocolChoice {
    /// Replicas needed to tolerate `f` faults under this protocol.
    pub fn replicas_for(self, f: u32) -> u32 {
        match self {
            ProtocolChoice::Passive => 2,
            ProtocolChoice::MinBft => 2 * f + 1,
            ProtocolChoice::Pbft => 3 * f + 1,
        }
    }

    /// Whether the protocol masks Byzantine (not just crash) faults.
    pub fn tolerates_byzantine(self) -> bool {
        !matches!(self, ProtocolChoice::Passive)
    }
}

/// A deployed configuration: protocol plus fault threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Deployment {
    /// Protocol in use.
    pub protocol: ProtocolChoice,
    /// Fault threshold the deployment is sized for.
    pub f: u32,
}

impl Deployment {
    /// Tiles/replicas this deployment occupies.
    pub fn replicas(&self) -> u32 {
        self.protocol.replicas_for(self.f)
    }

    /// Whether the deployment masks an attacker able to compromise
    /// `byz_faults` replicas (Byzantine).
    pub fn masks(&self, byz_faults: u32) -> bool {
        if byz_faults == 0 {
            return true;
        }
        self.protocol.tolerates_byzantine() && self.f >= byz_faults
    }
}

/// The controller's policy: a threat-level → deployment table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveController {
    /// Deployment per [`ThreatLevel`] (index = level order).
    pub table: [Deployment; 4],
    /// Cycles of degraded service while switching deployments.
    pub switch_cost: u64,
}

impl Default for AdaptiveController {
    fn default() -> Self {
        AdaptiveController {
            table: [
                Deployment { protocol: ProtocolChoice::Passive, f: 1 },
                Deployment { protocol: ProtocolChoice::MinBft, f: 1 },
                Deployment { protocol: ProtocolChoice::MinBft, f: 2 },
                Deployment { protocol: ProtocolChoice::Pbft, f: 3 },
            ],
            switch_cost: 500,
        }
    }
}

impl AdaptiveController {
    /// Deployment for a threat level.
    pub fn deployment_for(&self, level: ThreatLevel) -> Deployment {
        let idx = ThreatLevel::ALL.iter().position(|l| *l == level).expect("level in ALL");
        self.table[idx]
    }
}

/// Comparison policies for [`simulate_adaptation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptPolicy {
    /// Keep one deployment forever.
    Static(Deployment),
    /// Follow the controller's table as the detected level changes.
    Adaptive(AdaptiveController),
}

/// Outcome of replaying a threat trace under a policy (experiment E7).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptReport {
    /// Total trace duration.
    pub duration: u64,
    /// Time during which the deployment could NOT mask the actual threat.
    pub underprotected_time: u64,
    /// Integral of replicas over time (resource cost, replica-cycles).
    pub replica_cycles: u64,
    /// Deployment switches performed.
    pub switches: u32,
    /// Time spent in degraded switching state.
    pub switching_time: u64,
}

impl AdaptReport {
    /// Fraction of time under-protected.
    pub fn underprotected_fraction(&self) -> f64 {
        if self.duration == 0 {
            return 0.0;
        }
        self.underprotected_time as f64 / self.duration as f64
    }

    /// Mean replicas deployed.
    pub fn mean_replicas(&self) -> f64 {
        if self.duration == 0 {
            return 0.0;
        }
        self.replica_cycles as f64 / self.duration as f64
    }
}

/// A threat trace segment: for `duration` cycles, an attacker capable of
/// Byzantine-compromising `byz_faults` replicas is active, and the detector
/// reports `detected` (the detector may lag or misjudge; E7 feeds it
/// realistic lag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// Segment length in cycles.
    pub duration: u64,
    /// Ground-truth attacker strength (simultaneously compromisable
    /// replicas; 0 = no attacker).
    pub byz_faults: u32,
    /// Threat level the detector reports during this segment.
    pub detected: ThreatLevel,
}

/// Replays `trace` under `policy`.
pub fn simulate_adaptation(trace: &[TraceSegment], policy: AdaptPolicy) -> AdaptReport {
    let mut report = AdaptReport {
        duration: 0,
        underprotected_time: 0,
        replica_cycles: 0,
        switches: 0,
        switching_time: 0,
    };
    let mut current: Deployment = match policy {
        AdaptPolicy::Static(d) => d,
        AdaptPolicy::Adaptive(c) => c.deployment_for(ThreatLevel::Low),
    };
    for seg in trace {
        // Adaptive: react to the detected level at segment start.
        if let AdaptPolicy::Adaptive(controller) = policy {
            let want = controller.deployment_for(seg.detected);
            if want != current {
                report.switches += 1;
                let degraded = controller.switch_cost.min(seg.duration);
                report.switching_time += degraded;
                // During the switch the *larger* footprint is reserved but
                // protection is the weaker of the two configurations.
                let weaker_masks = |b: u32| current.masks(b) && want.masks(b);
                if !weaker_masks(seg.byz_faults) {
                    report.underprotected_time += degraded;
                }
                report.replica_cycles += degraded * current.replicas().max(want.replicas()) as u64;
                current = want;
                // Remainder of the segment runs the new deployment.
                let rest = seg.duration - degraded;
                report.duration += seg.duration;
                report.replica_cycles += rest * current.replicas() as u64;
                if !current.masks(seg.byz_faults) {
                    report.underprotected_time += rest;
                }
                continue;
            }
        }
        report.duration += seg.duration;
        report.replica_cycles += seg.duration * current.replicas() as u64;
        if !current.masks(seg.byz_faults) {
            report.underprotected_time += seg.duration;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceSegment> {
        vec![
            // Long quiet period.
            TraceSegment { duration: 80_000, byz_faults: 0, detected: ThreatLevel::Low },
            // Attacker ramps up: can compromise one replica.
            TraceSegment { duration: 8_000, byz_faults: 1, detected: ThreatLevel::High },
            // Full campaign: two replicas.
            TraceSegment { duration: 8_000, byz_faults: 2, detected: ThreatLevel::High },
            // Attack subsides.
            TraceSegment { duration: 80_000, byz_faults: 0, detected: ThreatLevel::Low },
        ]
    }

    #[test]
    fn replica_requirements() {
        assert_eq!(ProtocolChoice::Passive.replicas_for(3), 2);
        assert_eq!(ProtocolChoice::MinBft.replicas_for(2), 5);
        assert_eq!(ProtocolChoice::Pbft.replicas_for(2), 7);
    }

    #[test]
    fn masking_logic() {
        let passive = Deployment { protocol: ProtocolChoice::Passive, f: 1 };
        assert!(passive.masks(0));
        assert!(!passive.masks(1), "passive cannot mask Byzantine faults");
        let minbft2 = Deployment { protocol: ProtocolChoice::MinBft, f: 2 };
        assert!(minbft2.masks(2));
        assert!(!minbft2.masks(3));
    }

    #[test]
    fn static_small_is_cheap_but_underprotected() {
        let small = Deployment { protocol: ProtocolChoice::MinBft, f: 1 };
        let r = simulate_adaptation(&trace(), AdaptPolicy::Static(small));
        assert_eq!(r.underprotected_time, 8_000, "the f=2 phase defeats f=1");
        assert_eq!(r.mean_replicas(), 3.0);
        assert_eq!(r.switches, 0);
    }

    #[test]
    fn static_large_is_protected_but_expensive() {
        let big = Deployment { protocol: ProtocolChoice::Pbft, f: 2 };
        let r = simulate_adaptation(&trace(), AdaptPolicy::Static(big));
        assert_eq!(r.underprotected_time, 0);
        assert_eq!(r.mean_replicas(), 7.0, "7 replicas burn all the time");
    }

    #[test]
    fn adaptive_gets_both() {
        let r = simulate_adaptation(&trace(), AdaptPolicy::Adaptive(AdaptiveController::default()));
        // Under-protection only during switch windows (≤ 2 switches here).
        assert!(r.underprotected_time <= 2 * AdaptiveController::default().switch_cost);
        // Mean cost close to the quiet deployment's 2 replicas.
        assert!(r.mean_replicas() < 3.0, "adaptation amortizes to cheap: {}", r.mean_replicas());
        assert!(r.switches >= 2);
    }

    #[test]
    fn adaptive_with_lagging_detector_pays_in_protection() {
        // Detector stuck at Low while the attacker is active.
        let blind =
            vec![TraceSegment { duration: 10_000, byz_faults: 1, detected: ThreatLevel::Low }];
        let r = simulate_adaptation(&blind, AdaptPolicy::Adaptive(AdaptiveController::default()));
        assert_eq!(r.underprotected_time, 10_000, "no detection, no protection");
    }

    #[test]
    fn empty_trace_is_zeroes() {
        let r = simulate_adaptation(&[], AdaptPolicy::Adaptive(AdaptiveController::default()));
        assert_eq!(r.duration, 0);
        assert_eq!(r.underprotected_fraction(), 0.0);
        assert_eq!(r.mean_replicas(), 0.0);
    }
}
