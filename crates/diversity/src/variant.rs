//! Variants, vendors, vulnerabilities, and the variant pool/generator.

use rsoc_sim::SimRng;
use std::collections::BTreeSet;

/// A vulnerability class in the shared universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VulnId(pub u32);

/// An implementation vendor (vendor families share base vulnerabilities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VendorId(pub u32);

/// A concrete implementation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VariantId(pub u32);

/// An implementation variant: identity, vendor family, vulnerability set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Unique id.
    pub id: VariantId,
    /// Producing vendor.
    pub vendor: VendorId,
    /// Which vulnerability classes this implementation contains.
    pub vulns: BTreeSet<VulnId>,
}

impl Variant {
    /// Whether this variant falls to an exploit for `vuln`.
    pub fn vulnerable_to(&self, vuln: VulnId) -> bool {
        self.vulns.contains(&vuln)
    }

    /// Number of shared vulnerabilities with another variant.
    pub fn overlap(&self, other: &Variant) -> usize {
        self.vulns.intersection(&other.vulns).count()
    }
}

/// Parameters of the variant universe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Size of the vulnerability universe.
    pub vuln_universe: u32,
    /// Number of vendors.
    pub vendors: u32,
    /// Base vulnerabilities every variant of a vendor inherits
    /// (the common-mode channel within a vendor family).
    pub vendor_base_vulns: u32,
    /// Additional variant-specific vulnerabilities.
    pub variant_vulns: u32,
    /// Variants generated up front.
    pub initial_variants: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            vuln_universe: 200,
            vendors: 4,
            vendor_base_vulns: 4,
            variant_vulns: 6,
            initial_variants: 12,
        }
    }
}

/// A pool of variants plus the generator for fresh ones.
#[derive(Debug, Clone)]
pub struct VariantPool {
    config: PoolConfig,
    vendor_bases: Vec<BTreeSet<VulnId>>,
    variants: Vec<Variant>,
}

impl VariantPool {
    /// Generates a pool: vendor base sets first, then the initial variants
    /// round-robin across vendors.
    ///
    /// # Panics
    /// Panics if the universe is too small to sample the requested set
    /// sizes, or `vendors == 0`.
    pub fn generate(config: PoolConfig, rng: &mut SimRng) -> Self {
        assert!(config.vendors > 0, "need at least one vendor");
        assert!(
            config.vendor_base_vulns + config.variant_vulns <= config.vuln_universe,
            "vulnerability universe too small"
        );
        let vendor_bases: Vec<BTreeSet<VulnId>> = (0..config.vendors)
            .map(|_| {
                rng.sample_indices(config.vuln_universe as usize, config.vendor_base_vulns as usize)
                    .into_iter()
                    .map(|i| VulnId(i as u32))
                    .collect()
            })
            .collect();
        let mut pool = VariantPool { config, vendor_bases, variants: Vec::new() };
        for _ in 0..config.initial_variants {
            pool.fresh_variant(rng);
        }
        pool
    }

    /// The pool's configuration.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// All variants generated so far.
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }

    /// Looks up a variant.
    pub fn variant(&self, id: VariantId) -> Option<&Variant> {
        self.variants.get(id.0 as usize)
    }

    /// Generates (and registers) a fresh variant: next vendor round-robin,
    /// vendor base vulnerabilities plus freshly sampled specific ones.
    ///
    /// Models the §II-B "morphable softcore" compiler: each call yields a
    /// new implementation with a new vulnerability profile.
    pub fn fresh_variant(&mut self, rng: &mut SimRng) -> VariantId {
        let id = VariantId(self.variants.len() as u32);
        let vendor = VendorId(id.0 % self.config.vendors);
        let mut vulns = self.vendor_bases[vendor.0 as usize].clone();
        while vulns.len() < (self.config.vendor_base_vulns + self.config.variant_vulns) as usize {
            vulns.insert(VulnId(rng.below(self.config.vuln_universe as u64) as u32));
        }
        self.variants.push(Variant { id, vendor, vulns });
        id
    }

    /// Picks a registered variant different from every id in `avoid`
    /// (e.g., variants currently deployed or known-compromised); generates
    /// a fresh one if no registered variant qualifies.
    pub fn diverse_replacement(&mut self, avoid: &[VariantId], rng: &mut SimRng) -> VariantId {
        let candidates: Vec<VariantId> =
            self.variants.iter().map(|v| v.id).filter(|id| !avoid.contains(id)).collect();
        match rng.choose(&candidates) {
            Some(id) => *id,
            None => self.fresh_variant(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(seed: u64) -> (VariantPool, SimRng) {
        let mut rng = SimRng::new(seed);
        let p = VariantPool::generate(PoolConfig::default(), &mut rng);
        (p, rng)
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = pool(5);
        let (b, _) = pool(5);
        assert_eq!(a.variants(), b.variants());
    }

    #[test]
    fn variants_have_requested_sizes() {
        let (p, _) = pool(6);
        let cfg = p.config();
        assert_eq!(p.variants().len(), cfg.initial_variants as usize);
        for v in p.variants() {
            assert_eq!(v.vulns.len(), (cfg.vendor_base_vulns + cfg.variant_vulns) as usize);
        }
    }

    #[test]
    fn same_vendor_variants_share_base() {
        let (p, _) = pool(7);
        let same_vendor: Vec<&Variant> =
            p.variants().iter().filter(|v| v.vendor == VendorId(0)).collect();
        assert!(same_vendor.len() >= 2);
        let overlap = same_vendor[0].overlap(same_vendor[1]);
        assert!(
            overlap >= p.config().vendor_base_vulns as usize,
            "vendor base must be shared: overlap={overlap}"
        );
    }

    #[test]
    fn fresh_variants_get_new_ids() {
        let (mut p, mut rng) = pool(8);
        let before = p.variants().len();
        let id = p.fresh_variant(&mut rng);
        assert_eq!(id.0 as usize, before);
        assert!(p.variant(id).is_some());
    }

    #[test]
    fn diverse_replacement_avoids_listed() {
        let (mut p, mut rng) = pool(9);
        let avoid: Vec<VariantId> = p.variants().iter().map(|v| v.id).take(6).collect();
        for _ in 0..20 {
            let r = p.diverse_replacement(&avoid, &mut rng);
            assert!(!avoid.contains(&r));
        }
    }

    #[test]
    fn diverse_replacement_generates_when_exhausted() {
        let (mut p, mut rng) = pool(10);
        let all: Vec<VariantId> = p.variants().iter().map(|v| v.id).collect();
        let r = p.diverse_replacement(&all, &mut rng);
        assert!(!all.contains(&r), "a fresh variant must be minted");
    }

    #[test]
    fn vulnerable_to_matches_set() {
        let (p, _) = pool(11);
        let v = &p.variants()[0];
        let hit = *v.vulns.iter().next().unwrap();
        assert!(v.vulnerable_to(hit));
        let miss =
            (0..p.config().vuln_universe).map(VulnId).find(|x| !v.vulns.contains(x)).unwrap();
        assert!(!v.vulnerable_to(miss));
    }

    #[test]
    #[should_panic(expected = "universe too small")]
    fn rejects_oversized_sets() {
        let mut rng = SimRng::new(1);
        VariantPool::generate(
            PoolConfig {
                vuln_universe: 5,
                vendor_base_vulns: 4,
                variant_vulns: 4,
                ..Default::default()
            },
            &mut rng,
        );
    }
}
