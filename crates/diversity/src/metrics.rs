//! Common-mode exposure metrics over a replica→variant assignment.

use crate::variant::{VariantId, VariantPool, VulnId};

/// Number of distinct variants in an assignment — the "diversity degree".
pub fn distinct_variants(assignment: &[VariantId]) -> usize {
    let mut v = assignment.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// How many replicas fall to an exploit for `vuln` under `assignment`.
pub fn replicas_hit(pool: &VariantPool, assignment: &[VariantId], vuln: VulnId) -> usize {
    assignment
        .iter()
        .filter(|id| pool.variant(**id).map(|v| v.vulnerable_to(vuln)).unwrap_or(false))
        .count()
}

/// Fraction of the vulnerability universe whose single exploit compromises
/// **more than `f`** replicas — the probability that a uniformly chosen
/// zero-day defeats the replicated system outright (§II-B's common-mode
/// failure risk).
pub fn common_mode_exposure(pool: &VariantPool, assignment: &[VariantId], f: usize) -> f64 {
    let universe = pool.config().vuln_universe;
    if universe == 0 {
        return 0.0;
    }
    let fatal =
        (0..universe).map(VulnId).filter(|v| replicas_hit(pool, assignment, *v) > f).count();
    fatal as f64 / universe as f64
}

/// Greedy estimate of how many *distinct* exploits an adversary needs to
/// compromise more than `f` replicas: repeatedly pick the vulnerability
/// covering the most not-yet-compromised replicas.
///
/// Exact minimum cover is NP-hard; greedy gives the standard ln(n)
/// approximation and, for the small replica counts on a chip, is almost
/// always exact. Returns `None` if even all exploits combined cannot
/// compromise more than `f` replicas.
pub fn greedy_exploits_to_defeat(
    pool: &VariantPool,
    assignment: &[VariantId],
    f: usize,
) -> Option<usize> {
    let universe = pool.config().vuln_universe;
    let mut compromised = vec![false; assignment.len()];
    let mut exploits = 0usize;
    loop {
        let down = compromised.iter().filter(|c| **c).count();
        if down > f {
            return Some(exploits);
        }
        // Pick the vuln that newly compromises the most replicas.
        let mut best: Option<(usize, VulnId)> = None;
        for raw in 0..universe {
            let vuln = VulnId(raw);
            let gain = assignment
                .iter()
                .enumerate()
                .filter(|(i, id)| {
                    !compromised[*i]
                        && pool.variant(**id).map(|v| v.vulnerable_to(vuln)).unwrap_or(false)
                })
                .count();
            if gain > 0 && best.map(|(g, _)| gain > g).unwrap_or(true) {
                best = Some((gain, vuln));
            }
        }
        let (_, vuln) = best?;
        exploits += 1;
        for (i, id) in assignment.iter().enumerate() {
            if pool.variant(*id).map(|v| v.vulnerable_to(vuln)).unwrap_or(false) {
                compromised[i] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{PoolConfig, VariantPool};
    use rsoc_sim::SimRng;

    fn pool(seed: u64) -> (VariantPool, SimRng) {
        let mut rng = SimRng::new(seed);
        let p = VariantPool::generate(PoolConfig::default(), &mut rng);
        (p, rng)
    }

    #[test]
    fn monoculture_exposure_is_total() {
        let (p, _) = pool(1);
        let mono = vec![VariantId(0); 4];
        assert_eq!(distinct_variants(&mono), 1);
        // Any vuln of variant 0 takes out all 4 replicas (> f for f in 0..3).
        let vuln_count = p.variant(VariantId(0)).unwrap().vulns.len();
        let exposure = common_mode_exposure(&p, &mono, 3);
        let expected = vuln_count as f64 / p.config().vuln_universe as f64;
        assert!((exposure - expected).abs() < 1e-12);
        assert_eq!(greedy_exploits_to_defeat(&p, &mono, 3), Some(1), "one exploit fells all");
    }

    #[test]
    fn diversity_reduces_exposure() {
        let (p, _) = pool(2);
        let f = 1usize;
        let mono = vec![VariantId(0); 4];
        // Cross-vendor diverse assignment (vendors are id % 4 by construction).
        let diverse = vec![VariantId(0), VariantId(1), VariantId(2), VariantId(3)];
        let e_mono = common_mode_exposure(&p, &mono, f);
        let e_div = common_mode_exposure(&p, &diverse, f);
        assert!(e_div < e_mono, "diverse exposure {e_div} must be below monoculture {e_mono}");
    }

    #[test]
    fn diverse_assignment_needs_more_exploits() {
        let (p, _) = pool(3);
        let f = 1usize;
        let mono = vec![VariantId(0); 4];
        let diverse = vec![VariantId(0), VariantId(1), VariantId(2), VariantId(3)];
        let k_mono = greedy_exploits_to_defeat(&p, &mono, f).unwrap();
        let k_div = greedy_exploits_to_defeat(&p, &diverse, f).unwrap();
        assert!(k_div >= k_mono, "diversity cannot make attack easier: {k_div} vs {k_mono}");
        assert_eq!(k_mono, 1);
    }

    #[test]
    fn replicas_hit_counts_correctly() {
        let (p, _) = pool(4);
        let v0 = p.variant(VariantId(0)).unwrap().clone();
        let vuln = *v0.vulns.iter().next().unwrap();
        let assignment = vec![VariantId(0), VariantId(0), VariantId(1)];
        let hits = replicas_hit(&p, &assignment, vuln);
        assert!(hits >= 2, "both copies of variant 0 fall");
    }

    #[test]
    fn undefeatable_returns_none() {
        // Universe where assignment is empty — nothing to compromise.
        let (p, _) = pool(5);
        assert_eq!(greedy_exploits_to_defeat(&p, &[], 0), None);
    }
}
