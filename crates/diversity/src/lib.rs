//! # rsoc-diversity — implementation diversity modeling
//!
//! §II-B of the paper: "Resiliency through active replication is only
//! guaranteed as long as the replicas fail independently. Diversity helps
//! building replicas of the same functionality but with different
//! implementations. The aim is to avoid common-mode benign failures and
//! intrusions."
//!
//! This crate models implementation variants with *vulnerability sets*
//! drawn from a shared universe (standard in diversity research: two
//! variants sharing a vulnerability fail together when it is exploited).
//! Vendor families share base vulnerabilities, capturing the paper's
//! multi-vendor/COTS argument, and a seeded generator produces fresh
//! variants on demand ("IP compilers \[that\] generate diverse versions of
//! identical softcores ... on the fly", §II-B).
//!
//! Experiments **E5** (diversity vs common-mode compromise) and **E6**
//! (diverse rejuvenation) build on these types.
//!
//! ## Example
//!
//! ```
//! use rsoc_diversity::{PoolConfig, VariantPool};
//! use rsoc_sim::SimRng;
//!
//! let mut rng = SimRng::new(7);
//! let mut pool = VariantPool::generate(PoolConfig::default(), &mut rng);
//! let a = pool.fresh_variant(&mut rng);
//! let b = pool.fresh_variant(&mut rng);
//! assert_ne!(a, b, "generator never hands out the same variant id twice in a row");
//! ```

pub mod metrics;
pub mod variant;

pub use metrics::{common_mode_exposure, distinct_variants, greedy_exploits_to_defeat};
pub use variant::{PoolConfig, Variant, VariantId, VariantPool, VendorId, VulnId};
