//! # manycore-resilience
//!
//! Umbrella crate for the reproduction of *"The Path to Fault- and
//! Intrusion-Resilient Manycore Systems on a Chip"* (Shoker,
//! Esteves-Verissimo, Völp — DSN 2023). Re-exports every subsystem crate
//! and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! See `README.md` for the architecture tour, `DESIGN.md` for the system
//! inventory and experiment index, and `EXPERIMENTS.md` for
//! paper-claim-vs-measured results.
//!
//! ## Layer map (paper Fig. 1 → crates)
//!
//! | layer | crate |
//! |---|---|
//! | simulation kernel | [`sim`] |
//! | gates, ECC, registers, vendor layers | [`hw`] |
//! | crypto primitives | [`crypto`] |
//! | trusted hybrids (USIG, TrInc, A2M) | [`hybrid`] |
//! | network-on-chip | [`noc`] |
//! | replication protocols | [`bft`] |
//! | implementation diversity | [`diversity`] |
//! | rejuvenation vs APTs | [`rejuv`] |
//! | threat-adaptive control | [`adapt`] |
//! | FPGA fabric & reconfiguration | [`fpga`] |
//! | the integrated resilient SoC | [`soc`] |
//!
//! ## Quickstart
//!
//! ```
//! use manycore_resilience::adapt::ProtocolChoice;
//! use manycore_resilience::soc::{ResilientSoc, SocConfig};
//!
//! let mut soc = ResilientSoc::new(SocConfig::default());
//! let report = soc.run_workload(ProtocolChoice::MinBft, 1, 1, 3);
//! assert!(report.safety_ok);
//! ```

pub use rsoc_adapt as adapt;
pub use rsoc_bft as bft;
pub use rsoc_crypto as crypto;
pub use rsoc_diversity as diversity;
pub use rsoc_fpga as fpga;
pub use rsoc_hw as hw;
pub use rsoc_hybrid as hybrid;
pub use rsoc_noc as noc;
pub use rsoc_rejuv as rejuv;
pub use rsoc_sim as sim;
pub use rsoc_soc as soc;
